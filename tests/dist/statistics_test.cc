/** Additional distribution properties: sampling statistics, convolution
 *  identities, slicing across every width, differential plane algebra. */
#include <cmath>

#include <gtest/gtest.h>

#include "cimloop/common/util.hh"
#include "cimloop/dist/encoding.hh"
#include "cimloop/dist/pmf.hh"

namespace cimloop::dist {
namespace {

TEST(Sampling, MatchesDistribution)
{
    Pmf p = Pmf::fromPoints({{0.0, 0.2}, {1.0, 0.5}, {4.0, 0.3}});
    Rng rng(123);
    const int n = 40000;
    double sum = 0.0;
    int ones = 0;
    for (int i = 0; i < n; ++i) {
        double v = p.sample(rng.uniform());
        sum += v;
        ones += (v == 1.0);
    }
    EXPECT_NEAR(sum / n, p.mean(), 0.03);
    EXPECT_NEAR(static_cast<double>(ones) / n, 0.5, 0.02);
}

TEST(Convolve, DeltaIsIdentity)
{
    Pmf p = Pmf::uniformInt(0, 7);
    Pmf shifted = p.convolveWith(Pmf::delta(3.0));
    EXPECT_NEAR(shifted.mean(), p.mean() + 3.0, 1e-12);
    EXPECT_NEAR(shifted.minValue(), 3.0, 1e-12);
    EXPECT_NEAR(shifted.probOf(3.0), 0.125, 1e-12);
}

TEST(Convolve, VarianceAdds)
{
    Pmf a = Pmf::uniformInt(0, 9);
    Pmf b = Pmf::uniformInt(-4, 4);
    Pmf sum = a.convolveWith(b);
    EXPECT_NEAR(sum.variance(), a.variance() + b.variance(), 1e-9);
}

TEST(Mixture, ChainIsUniform)
{
    // Mixing k deltas with weights 1/i mimics the engine's slice-mixture
    // construction; the result must be the uniform mixture.
    Pmf mix = Pmf::delta(0.0);
    for (int i = 1; i < 5; ++i) {
        double keep = static_cast<double>(i) / (i + 1);
        mix = mix.mixedWith(Pmf::delta(static_cast<double>(i)), keep);
    }
    for (int i = 0; i < 5; ++i)
        EXPECT_NEAR(mix.probOf(i), 0.2, 1e-12) << i;
}

class SliceWidths : public ::testing::TestWithParam<int>
{};

TEST_P(SliceWidths, FirstMomentReassembles)
{
    // For ANY slice width, sum over slices of E[slice] * 2^offset equals
    // E[code] — slicing never loses the first moment.
    int width = GetParam();
    Pmf ops = Pmf::quantizedGaussian(90.0, 45.0, 0, 255);
    EncodedTensor enc = encodeOperands(ops, Encoding::Unsigned, 8);
    auto slices = enc.slices(width);
    double reassembled = 0.0;
    int offset = 0;
    for (const EncodedTensor& s : slices) {
        reassembled += std::ldexp(s.codes.mean(), offset);
        offset += s.bits;
    }
    EXPECT_NEAR(reassembled, enc.codes.mean(), 1e-9) << "width " << width;
    // Total bits conserved.
    EXPECT_EQ(offset, 8);
}

INSTANTIATE_TEST_SUITE_P(Widths, SliceWidths,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8));

TEST(Differential, PlanesReconstructValue)
{
    // v = pos - neg exactly, and exactly one plane is nonzero.
    for (double v : {-100.0, -1.0, 0.0, 1.0, 57.0}) {
        EncodedTensor enc = encodeOperands(Pmf::delta(v),
                                           Encoding::Differential, 8);
        // The mixture has (at most) two support points: max(v,0), max(-v,0).
        double pos = std::max(v, 0.0);
        double neg = std::max(-v, 0.0);
        EXPECT_NEAR(enc.codes.mean(), (pos + neg) / 2.0, 1e-9) << v;
        EXPECT_NEAR(pos - neg, v, 1e-9);
    }
}

TEST(Xnor, UniformBipolarCodesToggleMaximally)
{
    EncodedTensor enc = encodeOperands(Pmf::uniformInt(-8, 7),
                                       Encoding::Xnor, 4);
    // Uniform 4b codes: 2 expected flips between consecutive values.
    EXPECT_NEAR(enc.meanBitFlips(), 2.0, 1e-9);
    EXPECT_TRUE(enc.bipolarBits);
}

TEST(Moments, SparsityLowersMeanNotSupport)
{
    Pmf dense = Pmf::reluGaussian(0.0, 40.0, 127);
    Pmf sparse = Pmf::delta(0.0).mixedWith(dense, 0.5);
    EXPECT_LT(sparse.mean(), dense.mean());
    EXPECT_DOUBLE_EQ(sparse.maxValue(), dense.maxValue());
    EncodedTensor e_dense = encodeOperands(dense, Encoding::Unsigned, 8);
    EncodedTensor e_sparse = encodeOperands(sparse, Encoding::Unsigned, 8);
    EXPECT_LT(e_sparse.meanNormValue(), e_dense.meanNormValue());
}

} // namespace
} // namespace cimloop::dist
