/**
 * The on-disk sweep journal: records round-trip through a fresh loader,
 * the manifest header pins (fingerprint, grid size, chunk size) are
 * enforced on reopen, and the commit protocol tolerates a killed
 * writer — an uncommitted tail in results.jsonl is dropped, a
 * truncated manifest line stops the committed set at the last full
 * commit, and records outside committed ranges never load.
 */
#include "cimloop/dse/journal.hh"

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"

namespace cimloop::dse {
namespace {

/** A fresh (pre-removed) journal directory under /tmp. */
std::string
freshDir(const std::string& tag)
{
    std::string dir = "/tmp/cimloop_journal_" + tag;
    std::filesystem::remove_all(dir);
    return dir;
}

PointResult
okPoint(std::size_t index, double energy)
{
    PointResult pr;
    pr.point.index = index;
    pr.status = PointStatus::Ok;
    pr.engineTouched = true;
    pr.energyPj = energy;
    pr.energyPerMacPj = energy / 2;
    pr.latencyNs = 3.5;
    pr.areaUm2 = 100.25;
    pr.macs = 64;
    pr.topsPerWatt = 0.5;
    pr.accuracyLoss = 2;
    return pr;
}

PointResult
skippedPoint(std::size_t index)
{
    PointResult pr;
    pr.point.index = index;
    pr.status = PointStatus::Skipped;
    pr.statusDetail = "constraint";
    return pr;
}

TEST(DseJournal, RecordsRoundTripThroughAFreshLoader)
{
    const std::string dir = freshDir("roundtrip");
    {
        SweepJournal j(dir, "00000000deadbeef", 6, 2, "rt");
        EXPECT_EQ(j.completedChunks(), 0u);
        std::vector<PointResult> chunk;
        chunk.push_back(okPoint(2, 8.0));
        PointResult failed;
        failed.point.index = 3;
        failed.status = PointStatus::Failed;
        failed.engineTouched = true;
        failed.statusDetail = "fatal: line1\nline2 \"quoted\"";
        chunk.push_back(failed);
        j.appendChunk(1, 2, 4, chunk);
    }
    SweepJournal j(dir, "00000000deadbeef", 6, 2, "rt");
    EXPECT_EQ(j.completedChunks(), 1u);
    EXPECT_FALSE(j.chunkCompleted(0));
    EXPECT_TRUE(j.chunkCompleted(1));

    const JournalRecord* ok = j.record(2);
    ASSERT_NE(ok, nullptr);
    EXPECT_EQ(ok->status, PointStatus::Ok);
    EXPECT_TRUE(ok->engineTouched);
    EXPECT_DOUBLE_EQ(ok->metrics[0], 8.0);
    EXPECT_DOUBLE_EQ(ok->metrics[1], 4.0);
    EXPECT_DOUBLE_EQ(ok->metrics[3], 100.25);

    const JournalRecord* bad = j.record(3);
    ASSERT_NE(bad, nullptr);
    EXPECT_EQ(bad->status, PointStatus::Failed);
    EXPECT_EQ(bad->statusDetail, "fatal: line1\nline2 \"quoted\"");

    EXPECT_EQ(j.record(0), nullptr); // chunk 0 never committed
}

TEST(DseJournal, SkippedPointsAreNotJournaled)
{
    const std::string dir = freshDir("skipped");
    {
        SweepJournal j(dir, "1111111111111111", 2, 2, "s");
        j.appendChunk(0, 0, 2, {okPoint(0, 1.0), skippedPoint(1)});
    }
    SweepJournal j(dir, "1111111111111111", 2, 2, "s");
    EXPECT_TRUE(j.chunkCompleted(0));
    EXPECT_NE(j.record(0), nullptr);
    // Validity is re-derived from (spec, index); no record exists.
    EXPECT_EQ(j.record(1), nullptr);
}

TEST(DseJournal, HeaderDisagreementIsFatal)
{
    const std::string dir = freshDir("header");
    {
        SweepJournal j(dir, "aaaaaaaaaaaaaaaa", 4, 2, "h");
        j.appendChunk(0, 0, 2, {okPoint(0, 1.0), okPoint(1, 2.0)});
    }
    // Different spec fingerprint: resuming would merge foreign results.
    EXPECT_THROW(SweepJournal(dir, "bbbbbbbbbbbbbbbb", 4, 2, "h"),
                 FatalError);
    // Different grid size or chunking: ranges no longer line up.
    EXPECT_THROW(SweepJournal(dir, "aaaaaaaaaaaaaaaa", 8, 2, "h"),
                 FatalError);
    EXPECT_THROW(SweepJournal(dir, "aaaaaaaaaaaaaaaa", 4, 3, "h"),
                 FatalError);
    // The rejected opens must not have clobbered the journal: the
    // matching triple still loads the committed chunk.
    SweepJournal ok(dir, "aaaaaaaaaaaaaaaa", 4, 2, "h");
    EXPECT_EQ(ok.completedChunks(), 1u);
    EXPECT_NE(ok.record(0), nullptr);
}

TEST(DseJournal, UncommittedResultTailIsDropped)
{
    // Kill-between-flushes: result lines hit disk but the manifest
    // commit line did not. The loader must treat that chunk as never
    // run (its records dropped), so the executor re-executes it.
    const std::string dir = freshDir("tail");
    {
        SweepJournal j(dir, "cccccccccccccccc", 4, 2, "t");
        j.appendChunk(0, 0, 2, {okPoint(0, 1.0), okPoint(1, 2.0)});
    }
    {
        std::ofstream results(dir + "/results.jsonl", std::ios::app);
        results << "{\"i\":2,\"st\":\"ok\",\"eng\":1,\"d\":\"\","
                   "\"m\":[9,9,9,9,9,9,9]}\n";
        results << "{\"i\":3,\"st\":\"ok\",\"eng\":1,"; // cut mid-write
    }
    SweepJournal j(dir, "cccccccccccccccc", 4, 2, "t");
    EXPECT_EQ(j.completedChunks(), 1u);
    EXPECT_NE(j.record(0), nullptr);
    EXPECT_EQ(j.record(2), nullptr) << "uncommitted record survived";
    EXPECT_EQ(j.record(3), nullptr);
}

TEST(DseJournal, TruncatedManifestLineStopsAtLastFullCommit)
{
    const std::string dir = freshDir("manifest");
    {
        SweepJournal j(dir, "dddddddddddddddd", 6, 2, "m");
        j.appendChunk(0, 0, 2, {okPoint(0, 1.0), okPoint(1, 2.0)});
    }
    {
        // A commit line cut off mid-write (the crash case the protocol
        // exists for).
        std::ofstream manifest(dir + "/manifest.jsonl", std::ios::app);
        manifest << "{\"chunk\":1,\"fr";
    }
    SweepJournal j(dir, "dddddddddddddddd", 6, 2, "m");
    EXPECT_EQ(j.completedChunks(), 1u);
    EXPECT_TRUE(j.chunkCompleted(0));
    EXPECT_FALSE(j.chunkCompleted(1));
}

TEST(DseJournal, ReExecutedChunkOverwritesItsRecords)
{
    // First attempt: records flushed, commit lost (simulated by hand).
    // The re-run re-journals the chunk; the last occurrence of an index
    // wins on load.
    const std::string dir = freshDir("rewrite");
    { SweepJournal j(dir, "eeeeeeeeeeeeeeee", 2, 2, "w"); }
    {
        std::ofstream results(dir + "/results.jsonl", std::ios::app);
        results << "{\"i\":0,\"st\":\"ok\",\"eng\":1,\"d\":\"\","
                   "\"m\":[1,1,1,1,1,1,1]}\n";
    }
    {
        SweepJournal j(dir, "eeeeeeeeeeeeeeee", 2, 2, "w");
        EXPECT_EQ(j.record(0), nullptr); // dropped: never committed
        j.appendChunk(0, 0, 2, {okPoint(0, 42.0), okPoint(1, 2.0)});
    }
    SweepJournal j(dir, "eeeeeeeeeeeeeeee", 2, 2, "w");
    const JournalRecord* rec = j.record(0);
    ASSERT_NE(rec, nullptr);
    EXPECT_DOUBLE_EQ(rec->metrics[0], 42.0);
}

TEST(DseJournal, CorruptCommitGeometryIsFatal)
{
    // A commit line whose range disagrees with chunk * chunk_size means
    // the journal was hand-edited or written by different code — merging
    // it would silently misplace results.
    const std::string dir = freshDir("geometry");
    { SweepJournal j(dir, "ffffffffffffffff", 6, 2, "g"); }
    {
        std::ofstream manifest(dir + "/manifest.jsonl", std::ios::app);
        manifest << "{\"chunk\":1,\"from\":0,\"to\":2}\n";
    }
    EXPECT_THROW(SweepJournal(dir, "ffffffffffffffff", 6, 2, "g"),
                 FatalError);
}

} // namespace
} // namespace cimloop::dse
