/**
 * Pareto frontier extraction on hand-computed fixtures, plus the
 * accuracy-loss proxy the frontier's accuracy objective reads.
 */
#include "cimloop/dse/dse.hh"

#include <vector>

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"
#include "cimloop/macros/macros.hh"

namespace cimloop::dse {
namespace {

TEST(DsePareto, HandComputedTwoObjectiveFrontier)
{
    // Minimizing both dimensions. Point 3 is dominated by 0 (1<=2 and
    // 5<=6, strict in both); point 6 by 1 (2<=4, 4<=4, strict in the
    // first). Everything else is nondominated.
    std::vector<std::vector<double>> rows = {
        {1, 5}, // 0
        {2, 4}, // 1
        {3, 3}, // 2
        {2, 6}, // 3: dominated by 0
        {4, 2}, // 4
        {5, 1}, // 5
        {4, 4}, // 6: dominated by 1 and 2
    };
    EXPECT_EQ(paretoIndices(rows),
              (std::vector<std::size_t>{0, 1, 2, 4, 5}));
}

TEST(DsePareto, EqualRowsAreBothKept)
{
    std::vector<std::vector<double>> rows = {{1, 1}, {1, 1}, {2, 2}};
    EXPECT_EQ(paretoIndices(rows), (std::vector<std::size_t>{0, 1}));
}

TEST(DsePareto, DegenerateInputs)
{
    EXPECT_TRUE(paretoIndices({}).empty());
    EXPECT_EQ(paretoIndices({{3.0, 7.0}}),
              (std::vector<std::size_t>{0}));
}

TEST(DsePareto, ThreeObjectives)
{
    std::vector<std::vector<double>> rows = {
        {1, 2, 3}, // 0
        {2, 1, 3}, // 1
        {3, 3, 3}, // 2: dominated by 0
        {1, 2, 4}, // 3: dominated by 0
    };
    EXPECT_EQ(paretoIndices(rows), (std::vector<std::size_t>{0, 1}));
}

TEST(DsePareto, SingleObjectiveKeepsOnlyTheMinimum)
{
    std::vector<std::vector<double>> rows = {{4}, {2}, {9}, {2}};
    EXPECT_EQ(paretoIndices(rows), (std::vector<std::size_t>{1, 3}));
}

TEST(DsePareto, MismatchedRowWidthsAreABug)
{
    EXPECT_THROW(paretoIndices({{1, 2}, {1}}), PanicError);
}

TEST(DsePareto, AccuracyProxyClipsAdcTruncation)
{
    macros::MacroParams p = macros::defaultsByName("base");
    p.rows = 128; // needs log2(128) + dac + cell - 2 bits
    p.dacBits = 1;
    p.cellBits = 2;
    p.adcBits = 5;
    faults::FaultModel clean;
    // needed = 7 + 1 + 2 - 2 = 8; clip = 8 - 5 = 3.
    EXPECT_DOUBLE_EQ(accuracyLossProxy(p, clean), 3.0);
    p.adcBits = 12; // more resolution than the sum carries: no loss
    EXPECT_DOUBLE_EQ(accuracyLossProxy(p, clean), 0.0);
}

TEST(DsePareto, AccuracyProxyAddsFaultSeverity)
{
    macros::MacroParams p = macros::defaultsByName("base");
    p.rows = 128;
    p.dacBits = 1;
    p.cellBits = 2;
    p.adcBits = 8; // exactly lossless: clip = 0
    faults::FaultModel f;
    f.stuckOffRate = 0.05;
    f.stuckOnRate = 0.05;
    f.conductanceSigma = 0.2;
    f.adcNoiseSigma = 0.1;
    f.adcOffset = -0.5;
    // 8 * 0.1 + 0.2 + 4 * 0.1 + 2 * 0.5 = 2.4
    EXPECT_NEAR(accuracyLossProxy(p, f), 2.4, 1e-12);
}

} // namespace
} // namespace cimloop::dse
