/**
 * Pareto frontier extraction on hand-computed fixtures, plus the
 * accuracy-loss proxy the frontier's accuracy objective reads.
 */
#include "cimloop/dse/dse.hh"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"
#include "cimloop/macros/macros.hh"

namespace cimloop::dse {
namespace {

TEST(DsePareto, HandComputedTwoObjectiveFrontier)
{
    // Minimizing both dimensions. Point 3 is dominated by 0 (1<=2 and
    // 5<=6, strict in both); point 6 by 1 (2<=4, 4<=4, strict in the
    // first). Everything else is nondominated.
    std::vector<std::vector<double>> rows = {
        {1, 5}, // 0
        {2, 4}, // 1
        {3, 3}, // 2
        {2, 6}, // 3: dominated by 0
        {4, 2}, // 4
        {5, 1}, // 5
        {4, 4}, // 6: dominated by 1 and 2
    };
    EXPECT_EQ(paretoIndices(rows),
              (std::vector<std::size_t>{0, 1, 2, 4, 5}));
}

TEST(DsePareto, EqualRowsAreBothKept)
{
    std::vector<std::vector<double>> rows = {{1, 1}, {1, 1}, {2, 2}};
    EXPECT_EQ(paretoIndices(rows), (std::vector<std::size_t>{0, 1}));
}

TEST(DsePareto, DegenerateInputs)
{
    EXPECT_TRUE(paretoIndices({}).empty());
    EXPECT_EQ(paretoIndices({{3.0, 7.0}}),
              (std::vector<std::size_t>{0}));
}

TEST(DsePareto, ThreeObjectives)
{
    std::vector<std::vector<double>> rows = {
        {1, 2, 3}, // 0
        {2, 1, 3}, // 1
        {3, 3, 3}, // 2: dominated by 0
        {1, 2, 4}, // 3: dominated by 0
    };
    EXPECT_EQ(paretoIndices(rows), (std::vector<std::size_t>{0, 1}));
}

TEST(DsePareto, SingleObjectiveKeepsOnlyTheMinimum)
{
    std::vector<std::vector<double>> rows = {{4}, {2}, {9}, {2}};
    EXPECT_EQ(paretoIndices(rows), (std::vector<std::size_t>{1, 3}));
}

TEST(DsePareto, MismatchedRowWidthsAreABug)
{
    EXPECT_THROW(paretoIndices({{1, 2}, {1}}), PanicError);
}

TEST(DsePareto, FrontReportsAdditionsAndEvictions)
{
    ParetoFront front(2);
    ParetoFront::Insertion a = front.insert(0, {2, 6});
    EXPECT_TRUE(a.added);
    EXPECT_TRUE(a.evicted.empty());
    // Dominated candidate: rejected, frontier untouched.
    ParetoFront::Insertion b = front.insert(1, {3, 7});
    EXPECT_FALSE(b.added);
    EXPECT_EQ(front.size(), 1u);
    // A dominating candidate evicts the member it beats.
    ParetoFront::Insertion c = front.insert(2, {1, 5});
    EXPECT_TRUE(c.added);
    EXPECT_EQ(c.evicted, (std::vector<std::size_t>{0}));
    // Equal rows coexist.
    ParetoFront::Insertion d = front.insert(3, {1, 5});
    EXPECT_TRUE(d.added);
    EXPECT_TRUE(d.evicted.empty());
    EXPECT_EQ(front.indices(), (std::vector<std::size_t>{2, 3}));
}

TEST(DsePareto, IncrementalFrontMatchesAllPairsReference)
{
    // Pseudo-random rows (deterministic LCG; no global RNG in tests),
    // checked against an independently coded O(n^2) all-pairs scan, in
    // several insertion orders — the frontier is order-independent.
    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    auto next = [&state] {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<double>((state >> 33) % 1000) / 10.0;
    };
    const std::size_t n = 200, dims = 3;
    std::vector<std::vector<double>> rows(n);
    for (auto& row : rows)
        for (std::size_t k = 0; k < dims; ++k)
            row.push_back(next());

    // Reference: brute-force domination test per row.
    std::vector<std::size_t> expected;
    for (std::size_t i = 0; i < n; ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < n && !dominated; ++j) {
            if (i == j)
                continue;
            bool le = true, lt = false;
            for (std::size_t k = 0; k < dims; ++k) {
                if (rows[j][k] > rows[i][k])
                    le = false;
                if (rows[j][k] < rows[i][k])
                    lt = true;
            }
            dominated = le && lt;
        }
        if (!dominated)
            expected.push_back(i);
    }
    ASSERT_FALSE(expected.empty());
    ASSERT_LT(expected.size(), n); // fixture has both kinds

    for (std::size_t stride : {1u, 7u, 31u}) {
        ParetoFront front(dims);
        // Visit indices in a stride permutation (stride coprime to n).
        for (std::size_t step = 0, i = 0; step < n;
             ++step, i = (i + stride) % n)
            front.insert(i, rows[i]);
        EXPECT_EQ(front.indices(), expected)
            << "frontier depends on insertion order (stride " << stride
            << ")";
    }
    EXPECT_EQ(paretoIndices(rows), expected);
}

TEST(DsePareto, AccuracyProxyClipsAdcTruncation)
{
    macros::MacroParams p = macros::defaultsByName("base");
    p.rows = 128; // needs log2(128) + dac + cell - 2 bits
    p.dacBits = 1;
    p.cellBits = 2;
    p.adcBits = 5;
    faults::FaultModel clean;
    // needed = 7 + 1 + 2 - 2 = 8; clip = 8 - 5 = 3.
    EXPECT_DOUBLE_EQ(accuracyLossProxy(p, clean), 3.0);
    p.adcBits = 12; // more resolution than the sum carries: no loss
    EXPECT_DOUBLE_EQ(accuracyLossProxy(p, clean), 0.0);
}

TEST(DsePareto, AccuracyProxyAddsFaultSeverity)
{
    macros::MacroParams p = macros::defaultsByName("base");
    p.rows = 128;
    p.dacBits = 1;
    p.cellBits = 2;
    p.adcBits = 8; // exactly lossless: clip = 0
    faults::FaultModel f;
    f.stuckOffRate = 0.05;
    f.stuckOnRate = 0.05;
    f.conductanceSigma = 0.2;
    f.adcNoiseSigma = 0.1;
    f.adcOffset = -0.5;
    // 8 * 0.1 + 0.2 + 4 * 0.1 + 2 * 0.5 = 2.4
    EXPECT_NEAR(accuracyLossProxy(p, f), 2.4, 1e-12);
}

} // namespace
} // namespace cimloop::dse
