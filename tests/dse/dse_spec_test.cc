/**
 * SweepSpec parsing and validation: YAML round-trips, the fatal paths
 * (every message must carry the offending sweep.* key path), and the
 * grid materialization contract (odometer order, string-axis
 * resolution, the scaled-ADC derivation, constraints).
 */
#include "cimloop/dse/dse.hh"

#include <string>

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/yaml/parser.hh"

namespace cimloop::dse {
namespace {

SweepSpec
specFromText(const std::string& text)
{
    return SweepSpec::fromYaml(yaml::parse(text));
}

/** Asserts @p fn throws FatalError whose message contains @p needle. */
template <typename Fn>
void
expectFatalContaining(Fn&& fn, const std::string& needle)
{
    try {
        fn();
        FAIL() << "expected FatalError containing '" << needle << "'";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "message: " << e.what();
    }
}

TEST(DseSpec, FromYamlParsesFullSpec)
{
    SweepSpec spec = specFromText(
        "sweep:\n"
        "  name: grid\n"
        "  macro: base\n"
        "  network: mvm\n"
        "  mappings: 12\n"
        "  seed: 3\n"
        "  objective: edp\n"
        "  scaled_adc: true\n"
        "  scaled_adc_anchor: 4\n"
        "  pareto: [energy, area]\n"
        "  axes:\n"
        "    - field: array\n"
        "      values: [64, 128]\n"
        "    - field: dac_bits\n"
        "      range: {from: 1, to: 4, step: 1}\n"
        "  constraints:\n"
        "    - {field: adc_bits, max: 14}\n"
        "  faults:\n"
        "    conductance_sigma: 0.1\n");
    EXPECT_EQ(spec.name, "grid");
    EXPECT_EQ(spec.macro, "base");
    EXPECT_EQ(spec.network, "mvm");
    EXPECT_EQ(spec.mappings, 12);
    EXPECT_EQ(spec.seed, 3u);
    EXPECT_EQ(spec.objective, engine::Objective::Edp);
    EXPECT_TRUE(spec.scaledAdc);
    EXPECT_EQ(spec.scaledAdcAnchor, 4);
    ASSERT_EQ(spec.paretoObjectives.size(), 2u);
    EXPECT_EQ(spec.paretoObjectives[0], "energy");
    EXPECT_EQ(spec.paretoObjectives[1], "area");
    ASSERT_EQ(spec.axes.size(), 2u);
    EXPECT_EQ(spec.axes[0].field, "array");
    ASSERT_EQ(spec.axes[0].values.size(), 2u);
    EXPECT_DOUBLE_EQ(spec.axes[0].values[1].num, 128.0);
    EXPECT_EQ(spec.axes[0].values[1].text, "128");
    EXPECT_EQ(spec.axes[1].field, "dac_bits");
    ASSERT_EQ(spec.axes[1].values.size(), 4u); // 1, 2, 3, 4
    ASSERT_EQ(spec.constraints.size(), 1u);
    EXPECT_EQ(spec.constraints[0].field, "adc_bits");
    EXPECT_TRUE(spec.constraints[0].hasMax);
    EXPECT_FALSE(spec.constraints[0].hasMin);
    EXPECT_DOUBLE_EQ(spec.faults.conductanceSigma, 0.1);
    EXPECT_EQ(spec.pointCount(), 8u);
}

TEST(DseSpec, BareMappingWithoutSweepWrapperParses)
{
    SweepSpec spec = specFromText("name: bare\nnetwork: mvm\n");
    EXPECT_EQ(spec.name, "bare");
    EXPECT_EQ(spec.pointCount(), 1u); // no axes: the single base design
}

TEST(DseSpec, GeometricRangeEnumeratesPowers)
{
    SweepSpec spec = specFromText(
        "network: mvm\n"
        "axes:\n"
        "  - field: rows\n"
        "    range: {from: 64, to: 512, mult: 2}\n");
    ASSERT_EQ(spec.axes[0].values.size(), 4u); // 64 128 256 512
    EXPECT_DOUBLE_EQ(spec.axes[0].values[3].num, 512.0);
}

TEST(DseSpec, TinyGeometricRangeKeepsItsEndpoint)
{
    // Regression: the endpoint tolerance used to be absolute
    // (1e-9 * max(1, |to|)), which at nanoscale magnitudes swallowed
    // the whole range — every value sat "within tolerance" of the
    // endpoint and beyond. It must be relative to the range magnitude.
    SweepSpec spec = specFromText(
        "network: mvm\n"
        "axes:\n"
        "  - field: fault_sigma\n"
        "    range: {from: 1.0e-10, to: 8.0e-10, mult: 2}\n");
    ASSERT_EQ(spec.axes[0].values.size(), 4u); // 1, 2, 4, 8 e-10
    EXPECT_DOUBLE_EQ(spec.axes[0].values[0].num, 1e-10);
    EXPECT_DOUBLE_EQ(spec.axes[0].values[3].num, 8e-10);
}

TEST(DseSpec, SteppedRangeIncludesAnEndpointReachedWithRoundoff)
{
    // 0.1 is not exact in binary; ten accumulated steps land a hair
    // off 1.0. The relative tolerance must still include the endpoint.
    SweepSpec spec = specFromText(
        "network: mvm\n"
        "axes:\n"
        "  - field: fault_sigma\n"
        "    range: {from: 0.1, to: 1.0, step: 0.1}\n");
    ASSERT_EQ(spec.axes[0].values.size(), 10u);
    EXPECT_NEAR(spec.axes[0].values[9].num, 1.0, 1e-9);
}

TEST(DseSpec, MillionPointGridValidates)
{
    // Grids past 10^6 points used to be rejected outright; they now
    // validate and run memory-bounded. Only a nonsensical >10^12 grid
    // (or an overflowing axis product) is refused.
    SweepSpec spec;
    spec.network = "mvm";
    std::vector<double> v(100);
    for (int i = 0; i < 100; ++i)
        v[i] = 0.01 + i * 0.001;
    spec.addAxis("fault_sigma", v);
    spec.addAxis("adc_noise_sigma", v);
    spec.addAxis("stuck_off_rate", v);
    EXPECT_EQ(spec.pointCount(), 1000000u);
    spec.validate(); // must not throw

    SweepSpec huge;
    huge.network = "mvm";
    std::vector<double> wide(20000);
    for (int i = 0; i < 20000; ++i)
        wide[i] = 0.01 + i * 1e-6;
    huge.addAxis("fault_sigma", wide);
    huge.addAxis("adc_noise_sigma", wide);
    huge.addAxis("stuck_off_rate", wide); // 8e12 points
    expectFatalContaining([&] { huge.validate(); }, "1e12");
}

TEST(DseSpec, FingerprintTracksEvaluationAffectingFields)
{
    SweepSpec a;
    a.network = "mvm";
    a.addAxis("dac_bits", std::vector<double>{1, 2});
    const std::string base = specFingerprint(a);
    EXPECT_EQ(base.size(), 16u);
    EXPECT_EQ(base.find_first_not_of("0123456789abcdef"),
              std::string::npos);
    EXPECT_EQ(specFingerprint(a), base) << "fingerprint is unstable";

    SweepSpec b = a;
    b.seed = 99;
    EXPECT_NE(specFingerprint(b), base);
    SweepSpec c = a;
    c.axes[0].values[1].num = 3;
    c.axes[0].values[1].text = "3";
    EXPECT_NE(specFingerprint(c), base);
    SweepSpec d = a;
    Constraint con;
    con.field = "dac_bits";
    con.hasMax = true;
    con.max = 1.0;
    d.constraints.push_back(con);
    EXPECT_NE(specFingerprint(d), base);
    SweepSpec e = a;
    e.faults.conductanceSigma = 0.25;
    EXPECT_NE(specFingerprint(e), base);
}

TEST(DseSpec, LayoutFieldParsesAndValidates)
{
    SweepSpec spec = specFromText(
        "network: mvm\n"
        "layout: search\n"
        "axes:\n"
        "  - field: dac_bits\n"
        "    values: [1, 2]\n");
    EXPECT_EQ(spec.layout, "search");
    EXPECT_EQ(materializePoint(spec, 0).layoutName, "search");

    expectFatalContaining(
        [] { specFromText("network: mvm\nlayout: banked3\n"); },
        "sweep.layout");
}

TEST(DseSpec, LayoutAxisMaterializesAndValidates)
{
    SweepSpec spec = specFromText(
        "network: mvm\n"
        "axes:\n"
        "  - field: layout\n"
        "    values: [default, banked4, search]\n");
    EXPECT_EQ(materializePoint(spec, 0).layoutName, "default");
    EXPECT_EQ(materializePoint(spec, 1).layoutName, "banked4");
    EXPECT_EQ(materializePoint(spec, 2).layoutName, "search");

    expectFatalContaining(
        [] {
            specFromText("network: mvm\n"
                         "axes:\n"
                         "  - field: layout\n"
                         "    values: [default, banked3]\n");
        },
        "sweep.axes[0].values[1]");
}

TEST(DseSpec, FingerprintIgnoresDefaultLayoutOnly)
{
    // Journals of pre-layout specs must keep their fingerprints: the
    // default "none" adds nothing, any explicit layout does.
    SweepSpec a;
    a.network = "mvm";
    a.addAxis("dac_bits", std::vector<double>{1, 2});
    const std::string base = specFingerprint(a);
    SweepSpec b = a;
    b.layout = "none";
    EXPECT_EQ(specFingerprint(b), base);
    b.layout = "search";
    EXPECT_NE(specFingerprint(b), base);
    b.layout = "banked4";
    EXPECT_NE(specFingerprint(b), base);
}

TEST(DseSpec, UnknownTopLevelKeyFatalsWithKeyPath)
{
    expectFatalContaining(
        [] { specFromText("network: mvm\nbogus: 1\n"); },
        "sweep.bogus");
}

TEST(DseSpec, UnknownAxisFieldFatalsWithKeyPath)
{
    expectFatalContaining(
        [] {
            specFromText("network: mvm\n"
                         "axes:\n"
                         "  - field: gremlins\n"
                         "    values: [1]\n");
        },
        "sweep.axes[0].field");
}

TEST(DseSpec, AxisNeedsExactlyOneOfValuesAndRange)
{
    expectFatalContaining(
        [] {
            specFromText("network: mvm\n"
                         "axes:\n"
                         "  - field: rows\n");
        },
        "sweep.axes[0]");
    expectFatalContaining(
        [] {
            specFromText("network: mvm\n"
                         "axes:\n"
                         "  - field: rows\n"
                         "    values: [64]\n"
                         "    range: {from: 1, to: 2, step: 1}\n");
        },
        "exactly one of 'values' and 'range'");
}

TEST(DseSpec, RangeNeedsExactlyOneOfStepAndMult)
{
    expectFatalContaining(
        [] {
            specFromText(
                "network: mvm\n"
                "axes:\n"
                "  - field: rows\n"
                "    range: {from: 1, to: 8, step: 1, mult: 2}\n");
        },
        "exactly one of 'step' and 'mult'");
    expectFatalContaining(
        [] {
            specFromText("network: mvm\n"
                         "axes:\n"
                         "  - field: rows\n"
                         "    range: {from: 1, to: 8, step: -1}\n");
        },
        "range.step must be > 0");
    expectFatalContaining(
        [] {
            specFromText("network: mvm\n"
                         "axes:\n"
                         "  - field: rows\n"
                         "    range: {from: 0, to: 8, mult: 2}\n");
        },
        "range.from must be > 0 with 'mult'");
}

TEST(DseSpec, DuplicateAxisFieldFatals)
{
    SweepSpec spec;
    spec.network = "mvm";
    spec.addAxis("dac_bits", std::vector<double>{1, 2});
    spec.addAxis("dac_bits", std::vector<double>{3});
    expectFatalContaining([&] { spec.validate(); },
                          "duplicate sweep axis field 'dac_bits'");
}

TEST(DseSpec, EmptyAxisValuesFatals)
{
    SweepSpec spec;
    spec.network = "mvm";
    spec.addAxis("rows", std::vector<double>{});
    expectFatalContaining([&] { spec.validate(); },
                          "sweep.axes[0].values must not be empty");
}

TEST(DseSpec, StringValuesOnNumericAxisFatal)
{
    expectFatalContaining(
        [] {
            specFromText("network: mvm\n"
                         "axes:\n"
                         "  - field: dac_bits\n"
                         "    values: [small, large]\n");
        },
        "takes numeric values");
}

TEST(DseSpec, UnknownConstraintFieldFatalsWithKeyPath)
{
    SweepSpec spec;
    spec.network = "mvm";
    Constraint c;
    c.field = "gremlins";
    c.hasMax = true;
    c.max = 1.0;
    spec.constraints.push_back(c);
    expectFatalContaining([&] { spec.validate(); },
                          "sweep.constraints[0].field");
}

TEST(DseSpec, ExactlyOneOfNetworkAndWorkload)
{
    SweepSpec none;
    expectFatalContaining([&] { none.validate(); },
                          "exactly one of sweep.network and "
                          "sweep.workload");
    SweepSpec both;
    both.network = "mvm";
    both.workloadPath = "net.yaml";
    expectFatalContaining([&] { both.validate(); }, "exactly one");
}

TEST(DseSpec, MappingsAndParetoValidated)
{
    SweepSpec spec;
    spec.network = "mvm";
    spec.mappings = 0;
    expectFatalContaining([&] { spec.validate(); },
                          "sweep.mappings must be >= 1");
    spec.mappings = 10;
    spec.paretoObjectives = {"speed"};
    expectFatalContaining([&] { spec.validate(); },
                          "unknown pareto objective 'speed'");
}

TEST(DseSpec, FaultModelValidatedThroughSpec)
{
    SweepSpec spec;
    spec.network = "mvm";
    spec.faults.conductanceSigma = 2.0; // beyond the analytic bound
    expectFatalContaining([&] { spec.validate(); },
                          "conductance_sigma");
}

TEST(DseGrid, OdometerOrderLastAxisFastest)
{
    SweepSpec spec;
    spec.network = "mvm";
    spec.addAxis("array", std::vector<double>{64, 128});
    spec.addAxis("dac_bits", std::vector<double>{1, 2, 3});
    ASSERT_EQ(spec.pointCount(), 6u);
    for (std::size_t i = 0; i < 6; ++i) {
        SweepPoint p = materializePoint(spec, i);
        EXPECT_EQ(p.index, i);
        ASSERT_EQ(p.coords.size(), 2u);
        EXPECT_EQ(p.coords[0], i / 3);
        EXPECT_EQ(p.coords[1], i % 3);
        EXPECT_EQ(p.params.rows, i < 3 ? 64 : 128);
        EXPECT_EQ(p.params.cols, p.params.rows); // 'array' sets both
        EXPECT_EQ(p.params.dacBits, static_cast<int>(i % 3) + 1);
    }
}

TEST(DseGrid, LabelNamesEveryAxisValue)
{
    SweepSpec spec;
    spec.network = "mvm";
    spec.addAxis("array", std::vector<double>{64, 128});
    spec.addAxis("dac_bits", std::vector<double>{1, 2, 3});
    EXPECT_EQ(materializePoint(spec, 1).label(spec),
              "array=64, dac_bits=2");
    SweepSpec flat;
    flat.network = "mvm";
    EXPECT_EQ(materializePoint(flat, 0).label(flat), "defaults");
}

TEST(DseGrid, StringAxisSelectsMacroDefaults)
{
    SweepSpec spec;
    spec.network = "mvm";
    spec.addAxis("macro", std::vector<std::string>{"base", "digital"});
    SweepPoint p0 = materializePoint(spec, 0);
    SweepPoint p1 = materializePoint(spec, 1);
    EXPECT_EQ(p0.macroName, "base");
    EXPECT_EQ(p1.macroName, "digital");
    EXPECT_EQ(p0.params.rows, macros::defaultsByName("base").rows);
    EXPECT_EQ(p1.params.rows, macros::defaultsByName("digital").rows);
}

TEST(DseGrid, ScaledAdcDerivesFromRowsAndDac)
{
    SweepSpec spec;
    spec.network = "mvm";
    spec.scaledAdc = true;
    spec.addAxis("array", std::vector<double>{128});
    spec.addAxis("dac_bits", std::vector<double>{1, 4});
    EXPECT_EQ(materializePoint(spec, 0).params.adcBits,
              macros::scaledAdcBits(128, 5));
    EXPECT_EQ(materializePoint(spec, 1).params.adcBits,
              macros::scaledAdcBits(128, 5) + 1); // max(0, 4 - 3)
}

TEST(DseGrid, FaultAxesWriteTheFaultModel)
{
    SweepSpec spec;
    spec.network = "mvm";
    spec.addAxis("fault_stuck_rate", std::vector<double>{0.04});
    spec.addAxis("conductance_sigma", std::vector<double>{0.2});
    SweepPoint p = materializePoint(spec, 0);
    // The combined rate splits evenly between the polarities.
    EXPECT_DOUBLE_EQ(p.faults.stuckOffRate, 0.02);
    EXPECT_DOUBLE_EQ(p.faults.stuckOnRate, 0.02);
    EXPECT_DOUBLE_EQ(p.faults.conductanceSigma, 0.2);
    EXPECT_DOUBLE_EQ(p.fieldValue("fault_stuck_rate"), 0.04);
    EXPECT_DOUBLE_EQ(p.fieldValue("conductance_sigma"), 0.2);
}

TEST(DseGrid, ConstraintSkipNamesKeyPathAndValue)
{
    SweepSpec spec;
    spec.network = "mvm";
    spec.scaledAdc = true;
    spec.addAxis("array", std::vector<double>{4096});
    spec.addAxis("dac_bits", std::vector<double>{8});
    Constraint c;
    c.field = "adc_bits";
    c.hasMax = true;
    c.max = 14.0;
    spec.constraints.push_back(c);
    SweepPoint p = materializePoint(spec, 0);
    std::string reason;
    EXPECT_FALSE(pointIsValid(spec, p, &reason));
    EXPECT_NE(reason.find("sweep.constraints[0]"), std::string::npos)
        << reason;
    EXPECT_NE(reason.find("adc_bits = 15"), std::string::npos) << reason;
}

TEST(DseGrid, ValidityPredicateRunsAfterConstraints)
{
    SweepSpec spec;
    spec.network = "mvm";
    spec.addAxis("dac_bits", std::vector<double>{1, 2});
    spec.validity = [](const SweepPoint& p) {
        return p.params.dacBits != 2;
    };
    std::string reason;
    EXPECT_TRUE(pointIsValid(spec, materializePoint(spec, 0), &reason));
    EXPECT_FALSE(pointIsValid(spec, materializePoint(spec, 1), &reason));
    EXPECT_NE(reason.find("validity predicate"), std::string::npos);
}

TEST(DseGrid, MaterializeOutOfRangeIsABug)
{
    SweepSpec spec;
    spec.network = "mvm";
    spec.addAxis("dac_bits", std::vector<double>{1, 2});
    EXPECT_THROW(materializePoint(spec, 2), PanicError);
}

} // namespace
} // namespace cimloop::dse
