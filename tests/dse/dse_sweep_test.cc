/**
 * Sweep executor: the grid reproduces the exact numbers of the
 * hand-rolled nested loops it replaces, keep-going turns an unmappable
 * design into a per-point diagnostic carrying its axis values, points
 * sharing an (arch, layer) pair reuse the per-action cache, and every
 * artifact (table, CSV, JSON) is byte-identical for any thread count.
 */
#include "cimloop/dse/dse.hh"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"
#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/obs/obs.hh"
#include "cimloop/workload/networks.hh"

namespace cimloop::dse {
namespace {

TEST(DseSweep, CrossCheckMatchesHandRolledLoop)
{
    // The fig-2b-style grid: array size x DAC resolution with the
    // scaled-ADC rule. Every point must reproduce the pJ/MAC a
    // standalone evaluateNetworkParallel() call computes for the same
    // design — the sweep is a refactor of the nested loops, not an
    // approximation of them.
    SweepSpec spec;
    spec.network = "mvm";
    spec.mappings = 8;
    spec.seed = 1;
    spec.scaledAdc = true;
    spec.addAxis("array", std::vector<double>{64, 128});
    spec.addAxis("dac_bits", std::vector<double>{1, 2});

    SweepResult result = runSweep(spec);
    ASSERT_EQ(result.points.size(), 4u);
    ASSERT_EQ(result.evaluated, 4u);

    workload::Network net = workload::networkByName("mvm");
    std::size_t i = 0;
    for (std::int64_t array : {64, 128}) {
        for (int dac : {1, 2}) {
            macros::MacroParams p = macros::defaultsByName("base");
            p.rows = array;
            p.cols = array;
            p.dacBits = dac;
            p.adcBits = macros::scaledAdcBits(array, 5) +
                        std::max(0, dac - 3);
            engine::Arch arch = macros::macroByName("base", p);
            engine::NetworkEvaluation ev =
                engine::evaluateNetworkParallel(
                    arch, net, 1, spec.mappings, spec.seed,
                    engine::Objective::Energy);
            const PointResult& pr = result.points[i++];
            ASSERT_EQ(pr.status, PointStatus::Ok)
                << pr.point.label(spec) << ": " << pr.statusDetail;
            EXPECT_DOUBLE_EQ(pr.energyPj, ev.energyPj)
                << pr.point.label(spec);
            EXPECT_DOUBLE_EQ(pr.energyPerMacPj, ev.energyPerMacPj())
                << pr.point.label(spec);
            EXPECT_DOUBLE_EQ(pr.latencyNs, ev.latencyNs)
                << pr.point.label(spec);
        }
    }
}

TEST(DseSweep, KeepGoingRecordsUnmappablePointWithAxisValues)
{
    // adc_bits = 15 exceeds the ADC survey regression's range, so that
    // design CIM_FATALs inside precompute. The sweep must finish, keep
    // the good point, and pin the failure to its axis values.
    SweepSpec spec;
    spec.network = "mvm";
    spec.mappings = 4;
    spec.addAxis("adc_bits", std::vector<double>{6, 15});

    SweepResult result = runSweep(spec);
    ASSERT_EQ(result.points.size(), 2u);
    EXPECT_EQ(result.evaluated, 1u);
    EXPECT_EQ(result.failed, 1u);

    const PointResult& bad = result.points[1];
    EXPECT_EQ(bad.status, PointStatus::Failed);
    EXPECT_NE(bad.statusDetail.find("resolution"), std::string::npos)
        << bad.statusDetail;
    ASSERT_FALSE(bad.layerDiagnostics.empty());
    EXPECT_EQ(bad.layerDiagnostics[0].kind, "fatal");

    // Every artifact names the failing design by its axis values.
    EXPECT_NE(formatTable(result).find("adc_bits=15"),
              std::string::npos);
    EXPECT_NE(toCsv(result).find("failed"), std::string::npos);

    EXPECT_EQ(result.bestIndex, 0u);
    EXPECT_EQ(result.frontier, (std::vector<std::size_t>{0}));
    EXPECT_TRUE(result.points[0].onFrontier);
    EXPECT_FALSE(result.points[1].onFrontier);
}

TEST(DseSweep, ConstraintSkipsInsteadOfFailing)
{
    // Same out-of-range design, but declared invalid: it must be
    // skipped (never sent to the engine), not failed.
    SweepSpec spec;
    spec.network = "mvm";
    spec.mappings = 4;
    spec.addAxis("adc_bits", std::vector<double>{6, 15});
    Constraint c;
    c.field = "adc_bits";
    c.hasMax = true;
    c.max = 14.0;
    spec.constraints.push_back(c);

    SweepResult result = runSweep(spec);
    EXPECT_EQ(result.evaluated, 1u);
    EXPECT_EQ(result.failed, 0u);
    EXPECT_EQ(result.skipped, 1u);
    EXPECT_EQ(result.points[1].status, PointStatus::Skipped);
    EXPECT_NE(result.points[1].statusDetail.find("constraint"),
              std::string::npos);
}

TEST(DseSweep, SharedDesignsReuseThePerActionCache)
{
    // Two points differing only in mapper budget share the per-action
    // key, so the second one's precompute is a cache hit — the
    // cross-point economy the sweep is built around.
    engine::clearPerActionCache();
    SweepSpec spec;
    spec.network = "mvm";
    spec.addAxis("array", std::vector<double>{64});
    spec.addAxis("mappings", std::vector<double>{4, 8});

    SweepResult result = runSweep(spec);
    ASSERT_EQ(result.evaluated, 2u);
    EXPECT_EQ(result.cacheMisses, 1u); // mvm is a single layer
    EXPECT_EQ(result.cacheHits, 1u);
    EXPECT_EQ(result.points[0].point.mappings, 4);
    EXPECT_EQ(result.points[1].point.mappings, 8);
}

TEST(DseSweep, ArtifactsByteIdenticalAcrossThreadCounts)
{
    SweepSpec spec;
    spec.network = "mvm";
    spec.mappings = 6;
    spec.scaledAdc = true;
    spec.addAxis("array", std::vector<double>{64, 128});
    spec.addAxis("dac_bits", std::vector<double>{1, 2, 8});

    std::string table, csv, json;
    for (int threads : {1, 4, 8}) {
        // Reset the process-wide cache so each run sees the same
        // hit/miss economy (the CLI does this per run too).
        engine::clearPerActionCache();
        SweepOptions opts;
        opts.threads = threads;
        SweepResult result = runSweep(spec, opts);
        if (threads == 1) {
            table = formatTable(result);
            csv = toCsv(result);
            json = toJson(result);
        } else {
            EXPECT_EQ(formatTable(result), table)
                << "table differs at --threads " << threads;
            EXPECT_EQ(toCsv(result), csv)
                << "CSV differs at --threads " << threads;
            EXPECT_EQ(toJson(result), json)
                << "JSON differs at --threads " << threads;
        }
    }
}

TEST(DseSweep, ForEachPointKeepsGoingAndReportsStatuses)
{
    SweepSpec spec;
    spec.addAxis("dac_bits", std::vector<double>{1, 2, 3, 4});
    Constraint c;
    c.field = "dac_bits";
    c.hasMax = true;
    c.max = 3.0;
    spec.constraints.push_back(c);

    std::vector<std::size_t> visited;
    std::vector<PointResult> statuses = forEachPoint(
        spec, /*threads=*/1, [&](const SweepPoint& point) {
            visited.push_back(point.index);
            if (point.params.dacBits == 2)
                CIM_FATAL("dac_bits = 2 is cursed");
        });

    ASSERT_EQ(statuses.size(), 4u);
    EXPECT_EQ(visited, (std::vector<std::size_t>{0, 1, 2}));
    EXPECT_EQ(statuses[0].status, PointStatus::Ok);
    EXPECT_EQ(statuses[1].status, PointStatus::Failed);
    EXPECT_NE(statuses[1].statusDetail.find("cursed"),
              std::string::npos);
    EXPECT_EQ(statuses[2].status, PointStatus::Ok);
    EXPECT_EQ(statuses[3].status, PointStatus::Skipped);
}

TEST(DseSweep, CsvAndJsonCarryTheGrid)
{
    SweepSpec spec;
    spec.network = "mvm";
    spec.mappings = 4;
    spec.addAxis("dac_bits", std::vector<double>{1, 2});

    SweepResult result = runSweep(spec);
    const std::string csv = toCsv(result);
    EXPECT_EQ(csv.compare(0, 6, "point,"), 0) << csv.substr(0, 40);
    EXPECT_NE(csv.find("dac_bits"), std::string::npos);
    // Header plus one row per point, newline-terminated.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);

    const std::string json = toJson(result);
    EXPECT_NE(json.find("\"summary\""), std::string::npos);
    EXPECT_NE(json.find("\"frontier\""), std::string::npos);
    EXPECT_NE(json.find("\"dac_bits\": \"2\""), std::string::npos);
}

TEST(DseSweep, CountsAreConsistent)
{
    SweepSpec spec;
    spec.network = "mvm";
    spec.mappings = 4;
    spec.scaledAdc = true;
    spec.addAxis("array", std::vector<double>{64, 4096});
    spec.addAxis("dac_bits", std::vector<double>{1, 8});
    // (4096, dac 8) derives a 15-bit ADC and fails; everything else is
    // evaluable.
    SweepResult result = runSweep(spec);
    EXPECT_EQ(result.evaluated + result.failed + result.skipped,
              result.points.size());
    EXPECT_EQ(result.failed, 1u);
    for (std::size_t idx : result.frontier)
        EXPECT_TRUE(result.points[idx].onFrontier);
    ASSERT_NE(result.bestIndex, static_cast<std::size_t>(-1));
    EXPECT_TRUE(result.points[result.bestIndex].onFrontier)
        << "the best point under the first objective is nondominated "
           "by construction";
}

TEST(DseSweep, ChunkSizeNeverChangesResultBytes)
{
    // Chunks are an execution/commit granularity, not a semantic one:
    // every artifact must come out byte-identical whether the grid runs
    // as one chunk or point-by-point.
    SweepSpec spec;
    spec.network = "mvm";
    spec.mappings = 4;
    spec.scaledAdc = true;
    spec.addAxis("array", std::vector<double>{64, 128});
    spec.addAxis("dac_bits", std::vector<double>{1, 2, 8});

    engine::clearPerActionCache();
    SweepResult mono = runSweep(spec);
    const std::string table = formatTable(mono);
    const std::string csv = toCsv(mono);
    const std::string json = toJson(mono);

    for (std::size_t chunk : {std::size_t{1}, std::size_t{2},
                              std::size_t{5}, std::size_t{100}}) {
        engine::clearPerActionCache();
        SweepOptions opts;
        opts.chunkSize = chunk;
        opts.threads = 4;
        SweepResult result = runSweep(spec, opts);
        EXPECT_EQ(formatTable(result), table)
            << "table differs at chunk size " << chunk;
        EXPECT_EQ(toCsv(result), csv)
            << "CSV differs at chunk size " << chunk;
        EXPECT_EQ(toJson(result), json)
            << "JSON differs at chunk size " << chunk;
        EXPECT_EQ(result.chunksTotal, (6 + chunk - 1) / chunk);
        EXPECT_EQ(result.chunksExecuted, result.chunksTotal);
        EXPECT_EQ(result.chunksResumed, 0u);
    }
}

TEST(DseSweep, NonFiniteMetricsDemoteThePointToFailed)
{
    // An absurd supply voltage overflows the quadratic energy factor to
    // inf. NaN/inf compares false against everything, so such a point
    // would silently sit on the Pareto frontier; the executor must
    // demote it to Failed with a diagnostic instead.
    SweepSpec spec;
    spec.network = "mvm";
    spec.mappings = 4;
    spec.addAxis("voltage", std::vector<double>{0.8, 1e200});

    SweepResult result = runSweep(spec);
    ASSERT_EQ(result.points.size(), 2u);
    EXPECT_EQ(result.evaluated, 1u);
    EXPECT_EQ(result.failed, 1u);
    EXPECT_EQ(result.points[1].status, PointStatus::Failed);
    EXPECT_NE(result.points[1].statusDetail.find("non-finite metric"),
              std::string::npos)
        << result.points[1].statusDetail;
    EXPECT_EQ(result.frontier, (std::vector<std::size_t>{0}));
    EXPECT_EQ(result.bestIndex, 0u);
}

TEST(DseSweep, NonFiniteMetricNamesTheFirstBadField)
{
    PointResult pr;
    pr.status = PointStatus::Ok;
    EXPECT_EQ(nonFiniteMetric(pr), nullptr);
    pr.latencyNs = std::numeric_limits<double>::quiet_NaN();
    ASSERT_NE(nonFiniteMetric(pr), nullptr);
    EXPECT_STREQ(nonFiniteMetric(pr), "latency_ns");
    pr.latencyNs = 0.0;
    pr.topsPerWatt = std::numeric_limits<double>::infinity();
    EXPECT_STREQ(nonFiniteMetric(pr), "tops_per_watt");
}

TEST(DseSweep, MaterializeFailureStillExportsAxisColumns)
{
    // A bad value on a string axis makes materializePoint() itself
    // throw, so the executor only has the grid-identity shell for that
    // point. Every exporter must still print the right index and axis
    // columns instead of indexing an empty axisText (the old
    // out-of-bounds read) or dropping CSV columns.
    SweepSpec spec;
    spec.network = "mvm";
    spec.mappings = 4;
    spec.addAxis("macro", std::vector<std::string>{"base", "gremlin"});
    spec.addAxis("dac_bits", std::vector<double>{1, 2});

    SweepResult result = runSweep(spec);
    ASSERT_EQ(result.points.size(), 4u);
    EXPECT_EQ(result.evaluated, 2u);
    EXPECT_EQ(result.failed, 2u);
    EXPECT_EQ(result.points[2].status, PointStatus::Failed);
    EXPECT_NE(result.points[2].statusDetail.find("unknown macro"),
              std::string::npos);
    // The shell still carries the axis values...
    ASSERT_EQ(result.points[2].point.axisText.size(), 2u);
    EXPECT_EQ(result.points[2].point.axisText[0], "gremlin");
    // ...so the table names the design and the CSV row keeps its
    // column count.
    EXPECT_NE(formatTable(result).find("macro=gremlin, dac_bits=1"),
              std::string::npos);
    const std::string csv = toCsv(result);
    std::size_t lineStart = 0;
    int lines = 0;
    const std::size_t headerCommas =
        static_cast<std::size_t>(std::count(
            csv.begin(), csv.begin() + csv.find('\n'), ','));
    auto fieldSeparators = [](const std::string& line) {
        // Commas inside quoted fields are payload, not separators.
        std::size_t n = 0;
        bool quoted = false;
        for (char ch : line) {
            if (ch == '"')
                quoted = !quoted;
            else if (ch == ',' && !quoted)
                ++n;
        }
        return n;
    };
    while (lineStart < csv.size()) {
        std::size_t lineEnd = csv.find('\n', lineStart);
        std::string line = csv.substr(lineStart, lineEnd - lineStart);
        EXPECT_EQ(fieldSeparators(line), headerCommas)
            << "row has wrong column count: " << line;
        lineStart = lineEnd + 1;
        ++lines;
    }
    EXPECT_EQ(lines, 5); // header + 4 points
    EXPECT_NE(toJson(result).find("\"macro\": \"gremlin\""),
              std::string::npos);
}

TEST(DseSweep, ExportersToleratePointsWithEmptyAxisText)
{
    // Regression for the exporters' out-of-bounds axisText[a] read:
    // a hand-built result whose point never materialized (empty
    // axisText) must render with padded (empty) axis columns.
    SweepResult result;
    result.name = "oob";
    result.axisFields = {"array", "dac_bits"};
    result.paretoObjectives = {"energy_per_mac", "latency"};
    result.totalPoints = 1;
    result.failed = 1;
    PointResult pr;
    pr.point.index = 0; // axisText left empty
    pr.status = PointStatus::Failed;
    pr.statusDetail = "fatal: broke before materialization\rwith a CR";
    result.points.push_back(pr);

    const std::string csv = toCsv(result);
    EXPECT_NE(csv.find("0,,,failed"), std::string::npos) << csv;
    // The carriage return rides inside a quoted field, so the CSV still
    // has exactly two record separators (header + row).
    EXPECT_NE(csv.find('\r'), std::string::npos);
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 2);
    EXPECT_NE(csv.find("\"fatal: broke before materialization\rwith"),
              std::string::npos)
        << csv;
    EXPECT_NE(toJson(result).find("\"array\": \"\""), std::string::npos);
    EXPECT_NE(formatTable(result).find("failed"), std::string::npos);
}

TEST(DseSweep, MemoryBoundedModeKeepsOnlyTheFrontier)
{
    SweepSpec spec;
    spec.network = "mvm";
    spec.mappings = 4;
    spec.scaledAdc = true;
    spec.addAxis("array", std::vector<double>{64, 128, 4096});
    spec.addAxis("dac_bits", std::vector<double>{1, 2, 8});

    engine::clearPerActionCache();
    SweepResult full = runSweep(spec);
    ASSERT_TRUE(full.pointsStored);

    engine::clearPerActionCache();
    SweepOptions opts;
    opts.maxPointsInMemory = 4; // grid is 9 points: force bounded mode
    SweepResult bounded = runSweep(spec, opts);

    EXPECT_FALSE(bounded.pointsStored);
    EXPECT_EQ(bounded.totalPoints, 9u);
    EXPECT_EQ(bounded.evaluated, full.evaluated);
    EXPECT_EQ(bounded.failed, full.failed);
    EXPECT_EQ(bounded.skipped, full.skipped);
    EXPECT_EQ(bounded.frontier, full.frontier);
    EXPECT_EQ(bounded.bestIndex, full.bestIndex);
    EXPECT_EQ(bounded.cacheHits, full.cacheHits);
    EXPECT_EQ(bounded.cacheMisses, full.cacheMisses);

    // Only the frontier is stored, in grid order, metrics intact.
    ASSERT_EQ(bounded.points.size(), bounded.frontier.size());
    for (std::size_t k = 0; k < bounded.frontier.size(); ++k) {
        const std::size_t idx = bounded.frontier[k];
        const PointResult* got = bounded.findPoint(idx);
        ASSERT_NE(got, nullptr) << "frontier point " << idx;
        EXPECT_TRUE(got->onFrontier);
        const PointResult* want = full.findPoint(idx);
        ASSERT_NE(want, nullptr);
        EXPECT_DOUBLE_EQ(got->energyPerMacPj, want->energyPerMacPj);
        EXPECT_DOUBLE_EQ(got->latencyNs, want->latencyNs);
    }
    // Dominated points were folded into the summary and released.
    bool sawDominated = false;
    for (std::size_t i = 0; i < 9; ++i) {
        if (full.findPoint(i)->status == PointStatus::Ok &&
            !full.findPoint(i)->onFrontier) {
            EXPECT_EQ(bounded.findPoint(i), nullptr);
            sawDominated = true;
        }
    }
    EXPECT_TRUE(sawDominated) << "fixture lost its dominated points";
    // Failures are sampled for the report.
    ASSERT_FALSE(bounded.failureSamples.empty());
    EXPECT_EQ(bounded.failureSamples[0].status, PointStatus::Failed);
}

/** dse.* counter values relevant to the resume contract. */
struct DseCounters
{
    std::uint64_t evaluated = 0, failed = 0, skipped = 0, pareto = 0;
    std::uint64_t hits = 0, misses = 0;
    std::uint64_t chunksExec = 0, chunksResumed = 0, pointsSkipped = 0;
};

DseCounters
readDseCounters()
{
    auto value = [](const char* name) -> std::uint64_t {
        for (const auto& [n, v] : obs::snapshot().counters)
            if (n == name)
                return v;
        return 0;
    };
    DseCounters c;
    c.evaluated = value("dse.points_evaluated");
    c.failed = value("dse.points_failed");
    c.skipped = value("dse.points_skipped");
    c.pareto = value("dse.points_pareto");
    c.hits = value("dse.cache.hits");
    c.misses = value("dse.cache.misses");
    c.chunksExec = value("dse.chunks_executed");
    c.chunksResumed = value("dse.chunks_resumed");
    c.pointsSkipped = value("dse.resume.points_skipped");
    return c;
}

TEST(DseSweep, InterruptedThenResumedRunIsByteIdentical)
{
    // The resume contract end-to-end: run two chunks, stop (the
    // controlled stand-in for a kill), rerun against the same journal
    // with a different thread count, and require every artifact byte
    // and every order-insensitive counter to match an uninterrupted
    // run.
    SweepSpec spec;
    spec.name = "resume";
    spec.network = "mvm";
    spec.mappings = 4;
    spec.scaledAdc = true;
    spec.addAxis("array", std::vector<double>{64, 128, 4096});
    spec.addAxis("dac_bits", std::vector<double>{1, 2, 8});
    Constraint c;
    c.field = "adc_bits";
    c.hasMax = true;
    c.max = 14.0;
    spec.constraints.push_back(c);

    engine::clearPerActionCache();
    obs::resetAll();
    SweepResult clean = runSweep(spec);
    const DseCounters cleanCounters = readDseCounters();
    const std::string table = formatTable(clean);
    const std::string csv = toCsv(clean);
    const std::string json = toJson(clean);

    for (int resumeThreads : {1, 8}) {
        const std::string dir =
            "/tmp/cimloop_resume_t" + std::to_string(resumeThreads);
        std::filesystem::remove_all(dir);

        SweepOptions first;
        first.threads = 1;
        first.chunkSize = 2;
        first.maxChunks = 2;
        first.resumeDir = dir;
        engine::clearPerActionCache();
        SweepResult partial = runSweep(spec, first);
        EXPECT_TRUE(partial.stoppedEarly);
        EXPECT_EQ(partial.chunksExecuted, 2u);
        EXPECT_EQ(partial.chunksTotal, 5u);
        EXPECT_NE(formatTable(partial).find("paused after"),
                  std::string::npos);

        SweepOptions second;
        second.threads = resumeThreads;
        second.chunkSize = 2;
        second.resumeDir = dir;
        engine::clearPerActionCache();
        obs::resetAll();
        SweepResult resumed = runSweep(spec, second);
        const DseCounters resumedCounters = readDseCounters();

        EXPECT_FALSE(resumed.stoppedEarly);
        EXPECT_EQ(resumed.chunksResumed, 2u);
        EXPECT_EQ(resumed.chunksExecuted, 3u);
        EXPECT_EQ(resumed.resumedPoints, 4u);
        EXPECT_EQ(formatTable(resumed), table)
            << "resumed table differs at --threads " << resumeThreads;
        EXPECT_EQ(toCsv(resumed), csv);
        EXPECT_EQ(toJson(resumed), json);

        // Every counter except the execution-shape triple matches the
        // uninterrupted run; the triple reports the resume itself.
        EXPECT_EQ(resumedCounters.evaluated, cleanCounters.evaluated);
        EXPECT_EQ(resumedCounters.failed, cleanCounters.failed);
        EXPECT_EQ(resumedCounters.skipped, cleanCounters.skipped);
        EXPECT_EQ(resumedCounters.pareto, cleanCounters.pareto);
        EXPECT_EQ(resumedCounters.hits, cleanCounters.hits);
        EXPECT_EQ(resumedCounters.misses, cleanCounters.misses);
        EXPECT_EQ(resumedCounters.chunksExec, 3u);
        EXPECT_EQ(resumedCounters.chunksResumed, 2u);
        EXPECT_EQ(resumedCounters.pointsSkipped, 4u);

        // Resuming a finished journal re-runs nothing.
        engine::clearPerActionCache();
        SweepResult again = runSweep(spec, second);
        EXPECT_EQ(again.chunksExecuted, 0u);
        EXPECT_EQ(again.chunksResumed, 5u);
        EXPECT_EQ(toCsv(again), csv);
    }
}

TEST(DseSweep, ResumeAgainstADriftedSpecIsFatal)
{
    const std::string dir = "/tmp/cimloop_resume_drift";
    std::filesystem::remove_all(dir);
    SweepSpec spec;
    spec.network = "mvm";
    spec.mappings = 4;
    spec.addAxis("dac_bits", std::vector<double>{1, 2, 3, 4});

    SweepOptions opts;
    opts.chunkSize = 2;
    opts.maxChunks = 1;
    opts.resumeDir = dir;
    SweepResult partial = runSweep(spec, opts);
    EXPECT_TRUE(partial.stoppedEarly);

    // Any evaluation-affecting change — here the seed — must refuse to
    // merge with the journaled half.
    spec.seed = 2;
    opts.maxChunks = 0;
    EXPECT_THROW(runSweep(spec, opts), FatalError);
}

TEST(DseSweep, MillionPointGridRunsMemoryBounded)
{
    // The grid that used to die in validateGrid() with "more than
    // 1000000 points". Constraints prune it to a handful of live
    // evaluations, but every index is still materialized, checked, and
    // folded — proving the executor streams rather than allocates the
    // grid.
    SweepSpec spec;
    spec.network = "mvm";
    spec.mappings = 2;
    std::vector<double> fine;
    for (int i = 0; i < 102; ++i)
        fine.push_back(0.05 + 0.001 * i);
    spec.addAxis("fault_sigma", fine);           // 102
    spec.addAxis("adc_noise_sigma", fine);       // x 102
    spec.addAxis("stuck_off_rate", fine);        // x 102 = 1,061,208
    Constraint c;
    c.field = "fault_sigma";
    c.hasMax = true;
    c.max = 0.0505; // one fine value survives per axis slot
    spec.constraints.push_back(c);
    Constraint c2;
    c2.field = "adc_noise_sigma";
    c2.hasMax = true;
    c2.max = 0.0505;
    spec.constraints.push_back(c2);
    Constraint c3;
    c3.field = "stuck_off_rate";
    c3.hasMax = true;
    // Half a grid step past the second value: 0.05 + 0.001 carries
    // binary roundoff, so the bound cannot sit exactly on it.
    c3.max = 0.0515;
    spec.constraints.push_back(c3);

    ASSERT_GT(spec.pointCount(), 1000000u);
    spec.validate(); // no longer fatal above 1e6

    SweepOptions opts;
    opts.threads = 8;
    opts.chunkSize = 65536;
    SweepResult result = runSweep(spec, opts);
    EXPECT_FALSE(result.pointsStored);
    EXPECT_EQ(result.totalPoints, 1061208u);
    EXPECT_EQ(result.evaluated, 2u); // stuck_off_rate 0.05, 0.051
    EXPECT_EQ(result.skipped, result.totalPoints - 2);
    EXPECT_EQ(result.failed, 0u);
    EXPECT_LE(result.points.size(), 2u);
    ASSERT_FALSE(result.frontier.empty());
    EXPECT_NE(result.findPoint(result.frontier[0]), nullptr);
}

/** The resume-test spec (5 chunks of 2 at chunkSize 2). */
SweepSpec
cancelSpec()
{
    SweepSpec spec;
    spec.name = "cancel";
    spec.network = "mvm";
    spec.mappings = 4;
    spec.scaledAdc = true;
    spec.addAxis("array", std::vector<double>{64, 128, 4096});
    spec.addAxis("dac_bits", std::vector<double>{1, 2, 8});
    Constraint c;
    c.field = "adc_bits";
    c.hasMax = true;
    c.max = 14.0;
    spec.constraints.push_back(c);
    return spec;
}

TEST(DseSweepCancel, PreCancelledTokenStopsBeforeAnyChunk)
{
    SweepSpec spec = cancelSpec();
    SweepOptions opts;
    opts.cancel.cancel(CancelReason::User);
    SweepResult result = runSweep(spec, opts);
    EXPECT_TRUE(result.stoppedEarly);
    EXPECT_TRUE(result.cancelled);
    EXPECT_EQ(result.chunksExecuted, 0u);
    EXPECT_EQ(result.evaluated, 0u);
}

TEST(DseSweepCancel, CancelledResumedSweepIsByteIdentical)
{
    // The acceptance contract: cancel mid-sweep (the token fires while
    // chunk 1 is in flight — that chunk still completes and commits),
    // then resume with a clean token and require the artifacts and
    // deterministic counters to match an uninterrupted run, at several
    // thread counts.
    SweepSpec spec = cancelSpec();

    engine::clearPerActionCache();
    obs::resetAll();
    SweepResult clean = runSweep(spec);
    const DseCounters cleanCounters = readDseCounters();
    const std::string table = formatTable(clean);
    const std::string csv = toCsv(clean);
    const std::string json = toJson(clean);

    for (int resumeThreads : {1, 8}) {
        const std::string dir =
            "/tmp/cimloop_cancel_t" + std::to_string(resumeThreads);
        std::filesystem::remove_all(dir);

        // The validity hook runs per materialized point, inside the
        // chunk that evaluates it — a deterministic stand-in for a
        // SIGINT landing mid-chunk. It always returns true (skip set
        // unchanged), and fires the token when chunk 1's first point
        // (index 2 at chunkSize 2) materializes. validity is not part
        // of the spec fingerprint, so resuming without it is valid.
        SweepSpec interrupted = cancelSpec();
        SweepOptions first;
        first.threads = 1;
        first.chunkSize = 2;
        first.resumeDir = dir;
        interrupted.validity = [&first](const SweepPoint& p) {
            if (p.index == 2)
                first.cancel.cancel(CancelReason::User);
            return true;
        };
        engine::clearPerActionCache();
        obs::resetAll();
        SweepResult partial = runSweep(interrupted, first);
        EXPECT_TRUE(partial.stoppedEarly);
        EXPECT_TRUE(partial.cancelled);
        // Chunks 0 and 1 committed whole; the token was only acted on
        // at the next chunk boundary.
        EXPECT_EQ(partial.chunksExecuted, 2u);
        EXPECT_EQ(partial.chunksTotal, 5u);
        EXPECT_NE(formatTable(partial).find("paused after"),
                  std::string::npos);
        bool sawCancelCounter = false;
        for (const auto& [name, v] : obs::snapshot().counters)
            if (name == "dse.cancelled")
                sawCancelCounter = v == 1;
        EXPECT_TRUE(sawCancelCounter);

        SweepOptions second;
        second.threads = resumeThreads;
        second.chunkSize = 2;
        second.resumeDir = dir;
        engine::clearPerActionCache();
        obs::resetAll();
        SweepResult resumed = runSweep(spec, second);
        const DseCounters resumedCounters = readDseCounters();

        EXPECT_FALSE(resumed.stoppedEarly);
        EXPECT_FALSE(resumed.cancelled);
        EXPECT_EQ(resumed.chunksResumed, 2u);
        EXPECT_EQ(resumed.chunksExecuted, 3u);
        EXPECT_EQ(formatTable(resumed), table)
            << "resumed table differs at --threads " << resumeThreads;
        EXPECT_EQ(toCsv(resumed), csv);
        EXPECT_EQ(toJson(resumed), json);
        EXPECT_EQ(resumedCounters.evaluated, cleanCounters.evaluated);
        EXPECT_EQ(resumedCounters.failed, cleanCounters.failed);
        EXPECT_EQ(resumedCounters.skipped, cleanCounters.skipped);
        EXPECT_EQ(resumedCounters.pareto, cleanCounters.pareto);
        EXPECT_EQ(resumedCounters.hits, cleanCounters.hits);
        EXPECT_EQ(resumedCounters.misses, cleanCounters.misses);
    }
}

TEST(DseSweepCancel, UncancelledSweepNeverBumpsTheCancelCounter)
{
    // dse.cancelled registers lazily on the first actual cancellation
    // (so normal runs don't grow the golden-pinned counter set — the
    // metrics_regress goldens enforce the absence in a fresh process).
    // Here, where earlier tests already registered it, assert it stays
    // zero across an uncancelled sweep.
    SweepSpec spec = cancelSpec();
    obs::resetAll();
    SweepResult result = runSweep(spec);
    EXPECT_FALSE(result.cancelled);
    for (const auto& [name, v] : obs::snapshot().counters)
        if (name == "dse.cancelled")
            EXPECT_EQ(v, 0u);
}

} // namespace
} // namespace cimloop::dse
