/**
 * Sweep executor: the grid reproduces the exact numbers of the
 * hand-rolled nested loops it replaces, keep-going turns an unmappable
 * design into a per-point diagnostic carrying its axis values, points
 * sharing an (arch, layer) pair reuse the per-action cache, and every
 * artifact (table, CSV, JSON) is byte-identical for any thread count.
 */
#include "cimloop/dse/dse.hh"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"
#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/workload/networks.hh"

namespace cimloop::dse {
namespace {

TEST(DseSweep, CrossCheckMatchesHandRolledLoop)
{
    // The fig-2b-style grid: array size x DAC resolution with the
    // scaled-ADC rule. Every point must reproduce the pJ/MAC a
    // standalone evaluateNetworkParallel() call computes for the same
    // design — the sweep is a refactor of the nested loops, not an
    // approximation of them.
    SweepSpec spec;
    spec.network = "mvm";
    spec.mappings = 8;
    spec.seed = 1;
    spec.scaledAdc = true;
    spec.addAxis("array", std::vector<double>{64, 128});
    spec.addAxis("dac_bits", std::vector<double>{1, 2});

    SweepResult result = runSweep(spec);
    ASSERT_EQ(result.points.size(), 4u);
    ASSERT_EQ(result.evaluated, 4u);

    workload::Network net = workload::networkByName("mvm");
    std::size_t i = 0;
    for (std::int64_t array : {64, 128}) {
        for (int dac : {1, 2}) {
            macros::MacroParams p = macros::defaultsByName("base");
            p.rows = array;
            p.cols = array;
            p.dacBits = dac;
            p.adcBits = macros::scaledAdcBits(array, 5) +
                        std::max(0, dac - 3);
            engine::Arch arch = macros::macroByName("base", p);
            engine::NetworkEvaluation ev =
                engine::evaluateNetworkParallel(
                    arch, net, 1, spec.mappings, spec.seed,
                    engine::Objective::Energy);
            const PointResult& pr = result.points[i++];
            ASSERT_EQ(pr.status, PointStatus::Ok)
                << pr.point.label(spec) << ": " << pr.statusDetail;
            EXPECT_DOUBLE_EQ(pr.energyPj, ev.energyPj)
                << pr.point.label(spec);
            EXPECT_DOUBLE_EQ(pr.energyPerMacPj, ev.energyPerMacPj())
                << pr.point.label(spec);
            EXPECT_DOUBLE_EQ(pr.latencyNs, ev.latencyNs)
                << pr.point.label(spec);
        }
    }
}

TEST(DseSweep, KeepGoingRecordsUnmappablePointWithAxisValues)
{
    // adc_bits = 15 exceeds the ADC survey regression's range, so that
    // design CIM_FATALs inside precompute. The sweep must finish, keep
    // the good point, and pin the failure to its axis values.
    SweepSpec spec;
    spec.network = "mvm";
    spec.mappings = 4;
    spec.addAxis("adc_bits", std::vector<double>{6, 15});

    SweepResult result = runSweep(spec);
    ASSERT_EQ(result.points.size(), 2u);
    EXPECT_EQ(result.evaluated, 1u);
    EXPECT_EQ(result.failed, 1u);

    const PointResult& bad = result.points[1];
    EXPECT_EQ(bad.status, PointStatus::Failed);
    EXPECT_NE(bad.statusDetail.find("resolution"), std::string::npos)
        << bad.statusDetail;
    ASSERT_FALSE(bad.layerDiagnostics.empty());
    EXPECT_EQ(bad.layerDiagnostics[0].kind, "fatal");

    // Every artifact names the failing design by its axis values.
    EXPECT_NE(formatTable(result).find("adc_bits=15"),
              std::string::npos);
    EXPECT_NE(toCsv(result).find("failed"), std::string::npos);

    EXPECT_EQ(result.bestIndex, 0u);
    EXPECT_EQ(result.frontier, (std::vector<std::size_t>{0}));
    EXPECT_TRUE(result.points[0].onFrontier);
    EXPECT_FALSE(result.points[1].onFrontier);
}

TEST(DseSweep, ConstraintSkipsInsteadOfFailing)
{
    // Same out-of-range design, but declared invalid: it must be
    // skipped (never sent to the engine), not failed.
    SweepSpec spec;
    spec.network = "mvm";
    spec.mappings = 4;
    spec.addAxis("adc_bits", std::vector<double>{6, 15});
    Constraint c;
    c.field = "adc_bits";
    c.hasMax = true;
    c.max = 14.0;
    spec.constraints.push_back(c);

    SweepResult result = runSweep(spec);
    EXPECT_EQ(result.evaluated, 1u);
    EXPECT_EQ(result.failed, 0u);
    EXPECT_EQ(result.skipped, 1u);
    EXPECT_EQ(result.points[1].status, PointStatus::Skipped);
    EXPECT_NE(result.points[1].statusDetail.find("constraint"),
              std::string::npos);
}

TEST(DseSweep, SharedDesignsReuseThePerActionCache)
{
    // Two points differing only in mapper budget share the per-action
    // key, so the second one's precompute is a cache hit — the
    // cross-point economy the sweep is built around.
    engine::clearPerActionCache();
    SweepSpec spec;
    spec.network = "mvm";
    spec.addAxis("array", std::vector<double>{64});
    spec.addAxis("mappings", std::vector<double>{4, 8});

    SweepResult result = runSweep(spec);
    ASSERT_EQ(result.evaluated, 2u);
    EXPECT_EQ(result.cacheMisses, 1u); // mvm is a single layer
    EXPECT_EQ(result.cacheHits, 1u);
    EXPECT_EQ(result.points[0].point.mappings, 4);
    EXPECT_EQ(result.points[1].point.mappings, 8);
}

TEST(DseSweep, ArtifactsByteIdenticalAcrossThreadCounts)
{
    SweepSpec spec;
    spec.network = "mvm";
    spec.mappings = 6;
    spec.scaledAdc = true;
    spec.addAxis("array", std::vector<double>{64, 128});
    spec.addAxis("dac_bits", std::vector<double>{1, 2, 8});

    std::string table, csv, json;
    for (int threads : {1, 4, 8}) {
        // Reset the process-wide cache so each run sees the same
        // hit/miss economy (the CLI does this per run too).
        engine::clearPerActionCache();
        SweepOptions opts;
        opts.threads = threads;
        SweepResult result = runSweep(spec, opts);
        if (threads == 1) {
            table = formatTable(result);
            csv = toCsv(result);
            json = toJson(result);
        } else {
            EXPECT_EQ(formatTable(result), table)
                << "table differs at --threads " << threads;
            EXPECT_EQ(toCsv(result), csv)
                << "CSV differs at --threads " << threads;
            EXPECT_EQ(toJson(result), json)
                << "JSON differs at --threads " << threads;
        }
    }
}

TEST(DseSweep, ForEachPointKeepsGoingAndReportsStatuses)
{
    SweepSpec spec;
    spec.addAxis("dac_bits", std::vector<double>{1, 2, 3, 4});
    Constraint c;
    c.field = "dac_bits";
    c.hasMax = true;
    c.max = 3.0;
    spec.constraints.push_back(c);

    std::vector<std::size_t> visited;
    std::vector<PointResult> statuses = forEachPoint(
        spec, /*threads=*/1, [&](const SweepPoint& point) {
            visited.push_back(point.index);
            if (point.params.dacBits == 2)
                CIM_FATAL("dac_bits = 2 is cursed");
        });

    ASSERT_EQ(statuses.size(), 4u);
    EXPECT_EQ(visited, (std::vector<std::size_t>{0, 1, 2}));
    EXPECT_EQ(statuses[0].status, PointStatus::Ok);
    EXPECT_EQ(statuses[1].status, PointStatus::Failed);
    EXPECT_NE(statuses[1].statusDetail.find("cursed"),
              std::string::npos);
    EXPECT_EQ(statuses[2].status, PointStatus::Ok);
    EXPECT_EQ(statuses[3].status, PointStatus::Skipped);
}

TEST(DseSweep, CsvAndJsonCarryTheGrid)
{
    SweepSpec spec;
    spec.network = "mvm";
    spec.mappings = 4;
    spec.addAxis("dac_bits", std::vector<double>{1, 2});

    SweepResult result = runSweep(spec);
    const std::string csv = toCsv(result);
    EXPECT_EQ(csv.compare(0, 6, "point,"), 0) << csv.substr(0, 40);
    EXPECT_NE(csv.find("dac_bits"), std::string::npos);
    // Header plus one row per point, newline-terminated.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);

    const std::string json = toJson(result);
    EXPECT_NE(json.find("\"summary\""), std::string::npos);
    EXPECT_NE(json.find("\"frontier\""), std::string::npos);
    EXPECT_NE(json.find("\"dac_bits\": \"2\""), std::string::npos);
}

TEST(DseSweep, CountsAreConsistent)
{
    SweepSpec spec;
    spec.network = "mvm";
    spec.mappings = 4;
    spec.scaledAdc = true;
    spec.addAxis("array", std::vector<double>{64, 4096});
    spec.addAxis("dac_bits", std::vector<double>{1, 8});
    // (4096, dac 8) derives a 15-bit ADC and fails; everything else is
    // evaluable.
    SweepResult result = runSweep(spec);
    EXPECT_EQ(result.evaluated + result.failed + result.skipped,
              result.points.size());
    EXPECT_EQ(result.failed, 1u);
    for (std::size_t idx : result.frontier)
        EXPECT_TRUE(result.points[idx].onFrontier);
    ASSERT_NE(result.bestIndex, static_cast<std::size_t>(-1));
    EXPECT_TRUE(result.points[result.bestIndex].onFrontier)
        << "the best point under the first objective is nondominated "
           "by construction";
}

} // namespace
} // namespace cimloop::dse
