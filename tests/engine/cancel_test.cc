/**
 * Cancellation across the engine: a fired token abandons searches whole
 * (all-or-nothing), network evaluation stops at the layer boundary, and
 * the refsim stops at the vector boundary — with keep-going runs
 * reporting kind-"cancelled" diagnostics instead of throwing.
 */
#include "cimloop/engine/evaluate.hh"

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/refsim/refsim.hh"
#include "cimloop/workload/networks.hh"

namespace cimloop::engine {
namespace {

workload::Network
smallNetwork()
{
    workload::Network net = workload::resnet18();
    net.layers.resize(3);
    return net;
}

TEST(CancelSearch, PreCancelledTokenThrowsBeforeAnyWork)
{
    Arch arch = macros::baseMacro();
    workload::Network net = smallNetwork();
    CancelToken token;
    token.cancel();
    try {
        searchMappings(arch, net.layers[0], 50, 1, Objective::Energy, 1,
                       &token);
        FAIL() << "expected CancelledError";
    } catch (const CancelledError& e) {
        EXPECT_EQ(e.reason(), CancelReason::User);
        EXPECT_NE(std::string(e.what()).find("mapping search"),
                  std::string::npos);
    }
}

TEST(CancelSearch, NullAndFreshTokensMatchBaselineBitExactly)
{
    Arch arch = macros::baseMacro();
    workload::Network net = smallNetwork();
    SearchResult base = searchMappings(arch, net.layers[0], 60, 7);
    CancelToken fresh;
    SearchResult with = searchMappings(arch, net.layers[0], 60, 7,
                                       Objective::Energy, 1, &fresh);
    EXPECT_DOUBLE_EQ(with.best.energyPj, base.best.energyPj);
    EXPECT_EQ(with.evaluated, base.evaluated);
    EXPECT_TRUE(with.bestMapping == base.bestMapping);
}

TEST(CancelNetwork, StrictModeThrowsCancelledError)
{
    Arch arch = macros::baseMacro();
    workload::Network net = smallNetwork();
    CancelToken token;
    token.cancel(CancelReason::User);
    EXPECT_THROW(evaluateNetwork(arch, net, 40, 1, Objective::Energy,
                                 false, &token),
                 CancelledError);
    EXPECT_THROW(evaluateNetworkParallel(arch, net, 4, 40, 1,
                                         Objective::Energy, false, &token),
                 CancelledError);
}

TEST(CancelNetwork, KeepGoingReportsCancelledDiagnostics)
{
    Arch arch = macros::baseMacro();
    workload::Network net = smallNetwork();
    CancelToken token;
    token.cancel(CancelReason::User);
    NetworkEvaluation ev = evaluateNetwork(arch, net, 40, 1,
                                           Objective::Energy, true, &token);
    ASSERT_EQ(ev.diagnostics.size(), net.layers.size());
    for (std::size_t i = 0; i < ev.diagnostics.size(); ++i) {
        EXPECT_EQ(ev.diagnostics[i].layerIndex, i);
        EXPECT_EQ(ev.diagnostics[i].kind, "cancelled");
    }
    EXPECT_DOUBLE_EQ(ev.energyPj, 0.0);
}

TEST(CancelNetwork, KeepGoingParallelReportsCancelledDiagnostics)
{
    Arch arch = macros::baseMacro();
    workload::Network net = smallNetwork();
    CancelToken token;
    token.cancel(CancelReason::Deadline);
    NetworkEvaluation ev = evaluateNetworkParallel(
        arch, net, 4, 40, 1, Objective::Energy, true, &token);
    ASSERT_EQ(ev.diagnostics.size(), net.layers.size());
    for (std::size_t i = 0; i < ev.diagnostics.size(); ++i) {
        EXPECT_EQ(ev.diagnostics[i].layerIndex, i);
        EXPECT_EQ(ev.diagnostics[i].kind, "cancelled");
        EXPECT_NE(ev.diagnostics[i].message.find("deadline"),
                  std::string::npos);
    }
}

TEST(CancelNetwork, CompletedLayersKeepByteIdenticalResults)
{
    // Cancel after the first layer: its result must match the
    // uninterrupted run's bit-for-bit — cancellation acts only at the
    // layer boundary and never perturbs completed work.
    Arch arch = macros::baseMacro();
    workload::Network net = smallNetwork();
    NetworkEvaluation base =
        evaluateNetwork(arch, net, 40, 7, Objective::Energy, true);

    CancelToken token;
    int searched = 0;
    // No per-layer hook exists, so cancel from inside the engine via a
    // token poll side effect: run layer-by-layer manually.
    NetworkEvaluation partial;
    partial.layers.resize(net.layers.size());
    for (std::size_t i = 0; i < net.layers.size(); ++i) {
        if (token.cancelled())
            break;
        partial.layers[i] = searchMappings(arch, net.layers[i], 40,
                                           7 + net.layers[i].index,
                                           Objective::Energy, 1, &token);
        if (++searched == 1)
            token.cancel();
    }
    ASSERT_EQ(searched, 1);
    EXPECT_DOUBLE_EQ(partial.layers[0].best.energyPj,
                     base.layers[0].best.energyPj);
    EXPECT_TRUE(partial.layers[0].bestMapping ==
                base.layers[0].bestMapping);
}

TEST(CancelRefsim, PreCancelledTokenAbandonsTheLayer)
{
    workload::Network net = smallNetwork();
    refsim::RefSimConfig cfg;
    cfg.maxVectors = 4;
    cfg.cancel.cancel(CancelReason::User);
    EXPECT_THROW(refsim::simulateValueLevel(cfg, net.layers[0]),
                 CancelledError);
}

TEST(CancelRefsim, FreshTokenMatchesBaselineBitExactly)
{
    workload::Network net = smallNetwork();
    refsim::RefSimConfig cfg;
    cfg.maxVectors = 4;
    refsim::RefSimResult base =
        refsim::simulateValueLevel(cfg, net.layers[0]);
    refsim::RefSimConfig cfg2;
    cfg2.maxVectors = 4;
    cfg2.cancel = CancelToken(); // fresh, never fires
    refsim::RefSimResult with =
        refsim::simulateValueLevel(cfg2, net.layers[0]);
    EXPECT_DOUBLE_EQ(with.totalPj(), base.totalPj());
    EXPECT_EQ(with.valuesSimulated, base.valuesSimulated);
}

} // namespace
} // namespace cimloop::engine
