#include "cimloop/engine/evaluate.hh"

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/workload/networks.hh"

namespace cimloop::engine {
namespace {

using macros::baseMacro;
using macros::MacroParams;
using workload::dimIndex;
using workload::Dim;
using workload::matmulLayer;

TEST(ExtendLayer, SetsSliceDims)
{
    Arch arch = baseMacro(); // 8b operands, 1b DAC, 1b cells
    workload::Layer layer = matmulLayer("mvm", 4, 16, 16);
    workload::Layer ext = arch.extendLayer(layer);
    EXPECT_EQ(ext.size(Dim::IB), 8);
    EXPECT_EQ(ext.size(Dim::WB), 8);

    MacroParams p = macros::baseDefaults();
    p.dacBits = 4;
    p.cellBits = 2;
    Arch arch2 = baseMacro(p);
    ext = arch2.extendLayer(layer);
    EXPECT_EQ(ext.size(Dim::IB), 2);
    EXPECT_EQ(ext.size(Dim::WB), 4);
}

TEST(ExtendLayer, RoundsUpOddSlices)
{
    MacroParams p = macros::baseDefaults();
    p.inputBits = 7;
    p.dacBits = 2;
    Arch arch = baseMacro(p);
    workload::Layer layer = matmulLayer("mvm", 1, 4, 4);
    EXPECT_EQ(arch.extendLayer(layer).size(Dim::IB), 4); // ceil(7/2)
}

TEST(Precompute, TableMatchesHierarchy)
{
    Arch arch = baseMacro();
    workload::Layer layer = workload::resnet18().layers[5];
    PerActionTable table = precompute(arch, layer);
    EXPECT_EQ(table.nodes.size(), arch.hierarchy.nodes.size());
    // The ADC and DAC nodes must have nonzero action energy for their
    // tensors; containers are free.
    int adc = arch.hierarchy.indexOf("adc");
    int dac = arch.hierarchy.indexOf("dac_bank");
    int macro = arch.hierarchy.indexOf("macro");
    ASSERT_GE(adc, 0);
    ASSERT_GE(dac, 0);
    EXPECT_GT(table.nodes[adc].actionEnergyPj[2], 0.0);
    EXPECT_GT(table.nodes[dac].actionEnergyPj[0], 0.0);
    EXPECT_DOUBLE_EQ(table.nodes[macro].actionEnergyPj[0], 0.0);
}

TEST(Evaluate, EndToEndBaseMacro)
{
    Arch arch = baseMacro();
    workload::Layer layer = matmulLayer("mvm", 64, 128, 128);
    layer.network = "mvm";
    PerActionTable table = precompute(arch, layer);
    mapping::Mapper mapper(arch.hierarchy, table.extLayer);
    Evaluation ev = evaluate(arch, table, mapper.greedy());
    ASSERT_TRUE(ev.valid) << ev.invalidReason;
    EXPECT_GT(ev.energyPj, 0.0);
    EXPECT_GT(ev.areaUm2, 0.0);
    EXPECT_GT(ev.latencyNs, 0.0);
    EXPECT_DOUBLE_EQ(ev.macs, 64.0 * 128 * 128);
    EXPECT_GT(ev.topsPerWatt(), 0.1);   // sane CiM ballpark
    EXPECT_LT(ev.topsPerWatt(), 10000.0);
    EXPECT_EQ(ev.nodeEnergyPj.size(), arch.hierarchy.nodes.size());
    double sum = 0.0;
    for (double e : ev.nodeEnergyPj)
        sum += e;
    EXPECT_NEAR(sum, ev.energyPj, 1e-6 * ev.energyPj);
}

TEST(Evaluate, InvalidMappingReported)
{
    Arch arch = baseMacro();
    workload::Layer layer = matmulLayer("mvm", 4, 8, 8);
    PerActionTable table = precompute(arch, layer);
    mapping::Mapping bad = mapping::Mapping::identity(arch.hierarchy);
    // No factors set: products don't match the layer dims.
    Evaluation ev = evaluate(arch, table, bad);
    EXPECT_FALSE(ev.valid);
    EXPECT_FALSE(ev.invalidReason.empty());
}

TEST(Evaluate, MoreMacsMoreEnergy)
{
    Arch arch = baseMacro();
    workload::Layer small = matmulLayer("s", 8, 64, 64);
    workload::Layer large = matmulLayer("l", 32, 64, 64);
    SearchResult a = searchMappings(arch, small, 50, 1);
    SearchResult b = searchMappings(arch, large, 50, 1);
    EXPECT_GT(b.best.energyPj, a.best.energyPj);
}

TEST(Search, FindsNoWorseThanGreedy)
{
    Arch arch = baseMacro();
    workload::Layer layer = workload::resnet18().layers[6];
    PerActionTable table = precompute(arch, layer);
    mapping::Mapper mapper(arch.hierarchy, table.extLayer);
    Evaluation greedy = evaluate(arch, table, mapper.greedy());
    ASSERT_TRUE(greedy.valid) << greedy.invalidReason;

    SearchResult sr = searchMappings(arch, layer, 100, 42);
    EXPECT_LE(sr.best.energyPj, greedy.energyPj * (1.0 + 1e-9));
    EXPECT_GT(sr.evaluated, 0);
}

TEST(Search, ObjectivesDiffer)
{
    Arch arch = baseMacro();
    workload::Layer layer = workload::resnet18().layers[3];
    SearchResult energy = searchMappings(arch, layer, 80, 5,
                                         Objective::Energy);
    SearchResult delay = searchMappings(arch, layer, 80, 5,
                                        Objective::Delay);
    EXPECT_LE(energy.best.energyPj, delay.best.energyPj * (1 + 1e-9));
    EXPECT_LE(delay.best.latencyNs, energy.best.latencyNs * (1 + 1e-9));
}

TEST(Search, DeterministicForSeed)
{
    Arch arch = baseMacro();
    workload::Layer layer = workload::resnet18().layers[2];
    SearchResult a = searchMappings(arch, layer, 60, 9);
    SearchResult b = searchMappings(arch, layer, 60, 9);
    EXPECT_DOUBLE_EQ(a.best.energyPj, b.best.energyPj);
    EXPECT_DOUBLE_EQ(a.best.latencyNs, b.best.latencyNs);
}

TEST(Network, EvaluatesAllLayers)
{
    Arch arch = baseMacro();
    workload::Network net = workload::maxUtilMvm(128, 128, 64);
    NetworkEvaluation ev = evaluateNetwork(arch, net, 40, 1);
    ASSERT_EQ(ev.layers.size(), net.layers.size());
    EXPECT_GT(ev.energyPj, 0.0);
    EXPECT_GT(ev.macs, 0.0);
    EXPECT_GT(ev.topsPerWatt(), 0.0);
    EXPECT_DOUBLE_EQ(ev.macs, static_cast<double>(net.totalMacs()));
}

TEST(Network, LayerCountsRespected)
{
    Arch arch = baseMacro();
    workload::Network net = workload::maxUtilMvm(64, 64, 16);
    NetworkEvaluation once = evaluateNetwork(arch, net, 30, 1);
    net.layers[0].count = 3;
    NetworkEvaluation thrice = evaluateNetwork(arch, net, 30, 1);
    EXPECT_NEAR(thrice.energyPj, 3.0 * once.energyPj,
                1e-6 * thrice.energyPj);
}

// The full-stack lesson of paper Fig. 2a: a larger array wastes macro
// energy on underutilization but slashes weight refetches; we check the
// underlying counts move the right way.
TEST(FullStack, LargerArrayReducesWeightTraffic)
{
    workload::Layer layer = workload::resnet18().layers[8]; // 128x128x3x3
    MacroParams small_p = macros::baseDefaults();
    small_p.rows = 64;
    small_p.cols = 64;
    MacroParams large_p = macros::baseDefaults();
    large_p.rows = 512;
    large_p.cols = 512;

    Arch small_arch = baseMacro(small_p);
    Arch large_arch = baseMacro(large_p);
    SearchResult small_sr = searchMappings(small_arch, layer, 100, 3);
    SearchResult large_sr = searchMappings(large_arch, layer, 100, 3);

    // Larger array: fewer steps (more parallel MACs)...
    EXPECT_LT(large_sr.best.steps, small_sr.best.steps);
    // ...but never better-than-perfect utilization.
    EXPECT_LE(large_sr.best.utilization, 1.0);
}

TEST(Voltage, SweepTradesEnergyForSpeed)
{
    workload::Layer layer = matmulLayer("mvm", 2048, 128, 128);
    MacroParams p = macros::baseDefaults();
    Arch nominal = baseMacro(p);
    p.supplyVoltage = 0.8 * models::techParams(p.technologyNm).vNominal;
    Arch low_v = baseMacro(p);

    SearchResult at_nom = searchMappings(nominal, layer, 50, 2);
    SearchResult at_low = searchMappings(low_v, layer, 50, 2);
    EXPECT_LT(at_low.best.energyPj, at_nom.best.energyPj);
    EXPECT_GT(at_low.best.latencyNs, at_nom.best.latencyNs);
}

} // namespace
} // namespace cimloop::engine
