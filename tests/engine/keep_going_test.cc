/**
 * Graceful per-layer degradation: keep-going network evaluation captures
 * failing layers as structured diagnostics and still evaluates the rest,
 * serial and parallel alike.
 */
#include "cimloop/engine/evaluate.hh"

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/spec/builder.hh"
#include "cimloop/workload/networks.hh"

namespace cimloop::engine {
namespace {

using macros::baseMacro;
using spec::HierarchyBuilder;
using workload::Dim;
using workload::matmulLayer;
using workload::TensorKind;

/**
 * A hierarchy that maps layers whose only data dims are P (plus the
 * IB/WB slice loops every layer carries), but no layer with a C loop
 * (greedy is fatal on those).
 */
Arch
unmappableArch()
{
    Arch arch;
    arch.name = "broken";
    arch.hierarchy =
        HierarchyBuilder("broken")
            .component("dram", "DRAM")
                .temporalReuse({TensorKind::Input, TensorKind::Weight,
                                TensorKind::Output})
                .temporalDims({Dim::P, Dim::IB, Dim::WB})
            .component("pe", "DigitalMac")
                .temporalReuse({TensorKind::Weight})
                .temporalDims({Dim::P, Dim::IB, Dim::WB})
            .build();
    return arch;
}

/** Two mappable layers around one with a C loop the arch cannot place. */
workload::Network
mixedNetwork()
{
    workload::Network net;
    net.name = "mixed";
    workload::Layer ok1 = matmulLayer("ok1", 8, 1, 1);
    workload::Layer bad = matmulLayer("bad", 2, 8, 1);
    workload::Layer ok2 = matmulLayer("ok2", 16, 1, 1);
    net.layers = {ok1, bad, ok2};
    for (std::size_t i = 0; i < net.layers.size(); ++i) {
        net.layers[i].network = net.name;
        net.layers[i].index = static_cast<int>(i);
        net.layers[i].networkLayers = 3;
    }
    return net;
}

TEST(KeepGoing, CapturesFailingLayerAndContinues)
{
    Arch arch = unmappableArch();
    workload::Network net = mixedNetwork();

    // Without keep-going the bad layer aborts the whole evaluation...
    EXPECT_THROW(evaluateNetwork(arch, net, 50, 1), cimloop::FatalError);

    // ...with it, both good layers evaluate and the bad one becomes a
    // structured diagnostic instead.
    NetworkEvaluation ev =
        evaluateNetwork(arch, net, 50, 1, Objective::Energy, true);
    EXPECT_FALSE(ev.complete());
    ASSERT_EQ(ev.diagnostics.size(), 1u);
    EXPECT_EQ(ev.diagnostics[0].layerIndex, 1u);
    EXPECT_EQ(ev.diagnostics[0].layer, "bad");
    EXPECT_EQ(ev.diagnostics[0].kind, "fatal");
    EXPECT_NE(ev.diagnostics[0].message.find("temporal loop over C"),
              std::string::npos)
        << ev.diagnostics[0].message;

    // The layers vector stays parallel to network.layers; the failed
    // slot is default-constructed and excluded from the totals.
    ASSERT_EQ(ev.layers.size(), 3u);
    EXPECT_TRUE(ev.layers[0].best.valid);
    EXPECT_FALSE(ev.layers[1].best.valid);
    EXPECT_TRUE(ev.layers[2].best.valid);
    EXPECT_DOUBLE_EQ(ev.energyPj, ev.layers[0].best.energyPj +
                                      ev.layers[2].best.energyPj);
    EXPECT_GT(ev.energyPj, 0.0);
}

TEST(KeepGoing, ParallelMatchesSerial)
{
    Arch arch = unmappableArch();
    workload::Network net = mixedNetwork();
    NetworkEvaluation serial =
        evaluateNetwork(arch, net, 50, 1, Objective::Energy, true);
    for (int threads : {2, 8}) {
        NetworkEvaluation parallel = evaluateNetworkParallel(
            arch, net, threads, 50, 1, Objective::Energy, true);
        SCOPED_TRACE(threads);
        ASSERT_EQ(parallel.diagnostics.size(), serial.diagnostics.size());
        EXPECT_EQ(parallel.diagnostics[0].layer,
                  serial.diagnostics[0].layer);
        EXPECT_EQ(parallel.diagnostics[0].kind,
                  serial.diagnostics[0].kind);
        EXPECT_DOUBLE_EQ(parallel.energyPj, serial.energyPj);
        EXPECT_DOUBLE_EQ(parallel.latencyNs, serial.latencyNs);
    }
}

TEST(KeepGoing, AllLayersFailingStillCompletes)
{
    Arch arch = unmappableArch();
    workload::Network net;
    net.name = "all-broken";
    for (int i = 0; i < 3; ++i) {
        workload::Layer l = matmulLayer("mm", 2, 8, 1);
        l.network = net.name;
        l.index = i;
        l.networkLayers = 3;
        net.layers.push_back(l);
    }
    NetworkEvaluation ev = evaluateNetworkParallel(
        arch, net, 4, 50, 1, Objective::Energy, true);
    EXPECT_EQ(ev.diagnostics.size(), 3u);
    // Diagnostics arrive in ascending layer order even from the pool.
    for (std::size_t i = 0; i < ev.diagnostics.size(); ++i)
        EXPECT_EQ(ev.diagnostics[i].layerIndex, i);
    EXPECT_DOUBLE_EQ(ev.energyPj, 0.0);
    EXPECT_DOUBLE_EQ(ev.macs, 0.0);
}

TEST(KeepGoing, NoFailuresMatchesStrictModeBitExactly)
{
    Arch arch = baseMacro();
    workload::Network net = workload::resnet18();
    net.layers.resize(3);
    NetworkEvaluation strict = evaluateNetworkParallel(arch, net, 4, 40, 7);
    NetworkEvaluation lenient = evaluateNetworkParallel(
        arch, net, 4, 40, 7, Objective::Energy, true);
    EXPECT_TRUE(lenient.complete());
    EXPECT_DOUBLE_EQ(strict.energyPj, lenient.energyPj);
    EXPECT_DOUBLE_EQ(strict.latencyNs, lenient.latencyNs);
    ASSERT_EQ(strict.layers.size(), lenient.layers.size());
    for (std::size_t i = 0; i < strict.layers.size(); ++i) {
        EXPECT_TRUE(strict.layers[i].bestMapping ==
                    lenient.layers[i].bestMapping)
            << "layer " << i;
    }
}

} // namespace
} // namespace cimloop::engine
