/**
 * Parallel intra-layer mapping search: the shard/merge determinism
 * contract (identical winner for any thread count), the per-action table
 * cache, the rejected/exhausted counters, and the threaded network
 * evaluator's exception path (FatalError instead of std::terminate).
 */
#include "cimloop/engine/evaluate.hh"

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/spec/builder.hh"
#include "cimloop/workload/networks.hh"

namespace cimloop::engine {
namespace {

using macros::baseMacro;
using spec::HierarchyBuilder;
using workload::Dim;
using workload::matmulLayer;
using workload::TensorKind;

TEST(ParallelSearch, BestIdenticalAcrossThreadCounts)
{
    Arch arch = baseMacro();
    workload::Layer layer = workload::resnet18().layers[8];
    SearchResult serial =
        searchMappings(arch, layer, 300, 11, Objective::Energy, 1);
    for (int threads : {2, 8}) {
        SearchResult parallel =
            searchMappings(arch, layer, 300, 11, Objective::Energy,
                           threads);
        EXPECT_TRUE(serial.bestMapping == parallel.bestMapping)
            << threads << " threads picked a different mapping";
        EXPECT_DOUBLE_EQ(serial.best.energyPj, parallel.best.energyPj);
        EXPECT_DOUBLE_EQ(serial.best.latencyNs, parallel.best.latencyNs);
        // The shard decomposition is scheduling-independent, so even the
        // sample counters match exactly.
        EXPECT_EQ(serial.evaluated, parallel.evaluated);
        EXPECT_EQ(serial.invalid, parallel.invalid);
        EXPECT_EQ(serial.rejected, parallel.rejected);
        EXPECT_EQ(serial.exhausted, parallel.exhausted);
    }
}

TEST(ParallelSearch, DeterministicAcrossObjectives)
{
    Arch arch = baseMacro();
    workload::Layer layer = workload::resnet18().layers[3];
    for (Objective obj :
         {Objective::Energy, Objective::Edp, Objective::Delay}) {
        SearchResult a = searchMappings(arch, layer, 120, 5, obj, 1);
        SearchResult b = searchMappings(arch, layer, 120, 5, obj, 4);
        EXPECT_TRUE(a.bestMapping == b.bestMapping);
        EXPECT_DOUBLE_EQ(a.best.energyPj, b.best.energyPj);
    }
}

TEST(ParallelSearch, BudgetFullySampledWhenNotExhausted)
{
    Arch arch = baseMacro();
    workload::Layer layer = matmulLayer("mvm", 64, 128, 128);
    layer.network = "mvm";
    SearchResult sr = searchMappings(arch, layer, 200, 3);
    if (sr.exhausted == 0) {
        // Greedy + every budgeted sample was drawn and accounted for.
        EXPECT_EQ(sr.evaluated + sr.invalid, 201);
    }
    EXPECT_GE(sr.rejected, 0);
    EXPECT_GE(sr.exhausted, 0);
}

TEST(ParallelSearch, ZeroRandomMappingsReturnsGreedy)
{
    Arch arch = baseMacro();
    workload::Layer layer = matmulLayer("mvm", 16, 64, 64);
    layer.network = "mvm";
    SearchResult sr = searchMappings(arch, layer, 0, 1);
    EXPECT_EQ(sr.evaluated, 1);
    EXPECT_EQ(sr.exhausted, 0);
    EXPECT_TRUE(sr.best.valid);
}

TEST(ParallelNetwork, MatchesSerialBitExactly)
{
    Arch arch = baseMacro();
    workload::Network net = workload::resnet18();
    net.layers.resize(4); // keep the test quick
    NetworkEvaluation serial = evaluateNetwork(arch, net, 60, 7);
    NetworkEvaluation parallel =
        evaluateNetworkParallel(arch, net, 4, 60, 7);
    ASSERT_EQ(serial.layers.size(), parallel.layers.size());
    EXPECT_DOUBLE_EQ(serial.energyPj, parallel.energyPj);
    EXPECT_DOUBLE_EQ(serial.latencyNs, parallel.latencyNs);
    EXPECT_DOUBLE_EQ(serial.macs, parallel.macs);
    for (std::size_t i = 0; i < serial.layers.size(); ++i) {
        EXPECT_TRUE(serial.layers[i].bestMapping ==
                    parallel.layers[i].bestMapping)
            << "layer " << i;
    }
}

TEST(ParallelNetwork, MoreThreadsThanLayersSplitsSearch)
{
    // 2 layers, 8 threads: the intra-layer shards absorb the leftover
    // parallelism and the result still matches the serial evaluation.
    Arch arch = baseMacro();
    workload::Network net = workload::maxUtilMvm(128, 128, 64);
    workload::Layer second = net.layers[0];
    second.name = "mvm2";
    second.index = 1;
    net.layers.push_back(second);
    for (workload::Layer& l : net.layers)
        l.networkLayers = 2;
    NetworkEvaluation serial = evaluateNetwork(arch, net, 100, 9);
    NetworkEvaluation parallel =
        evaluateNetworkParallel(arch, net, 8, 100, 9);
    EXPECT_DOUBLE_EQ(serial.energyPj, parallel.energyPj);
    EXPECT_DOUBLE_EQ(serial.latencyNs, parallel.latencyNs);
}

/** A hierarchy no layer with a C loop can map onto (greedy is fatal). */
Arch
unmappableArch()
{
    Arch arch;
    arch.name = "broken";
    arch.hierarchy =
        HierarchyBuilder("broken")
            .component("dram", "DRAM")
                .temporalReuse({TensorKind::Input, TensorKind::Weight,
                                TensorKind::Output})
                .temporalDims({Dim::P})
            .component("pe", "DigitalMac")
                .temporalReuse({TensorKind::Weight})
                .temporalDims({Dim::P})
            .build();
    return arch;
}

TEST(ParallelNetwork, UnmappableLayerThrowsFatalErrorNotTerminate)
{
    Arch arch = unmappableArch();
    workload::Network net;
    net.name = "broken-net";
    for (int i = 0; i < 3; ++i) {
        workload::Layer l = matmulLayer("mm", 2, 8, 1);
        l.network = net.name;
        l.index = i;
        l.networkLayers = 3;
        net.layers.push_back(l);
    }
    // Before the fix, the FatalError escaped a worker lambda and
    // std::terminate killed the whole process here.
    EXPECT_THROW(evaluateNetworkParallel(arch, net, 4, 50, 1),
                 cimloop::FatalError);
    // Same failure surface as the serial path.
    EXPECT_THROW(evaluateNetwork(arch, net, 50, 1), cimloop::FatalError);
}

TEST(PerActionCache, HitsOnRepeatedSearch)
{
    clearPerActionCache();
    Arch arch = baseMacro();
    workload::Layer layer = workload::resnet18().layers[5];
    searchMappings(arch, layer, 20, 1);
    PerActionCacheStats after_first = perActionCacheStats();
    EXPECT_EQ(after_first.misses, 1u);
    EXPECT_EQ(after_first.entries, 1u);

    searchMappings(arch, layer, 20, 2);
    PerActionCacheStats after_second = perActionCacheStats();
    EXPECT_EQ(after_second.misses, 1u);
    EXPECT_GE(after_second.hits, 1u);
    clearPerActionCache();
}

TEST(PerActionCache, DistinguishesOperatingPoints)
{
    clearPerActionCache();
    Arch arch = baseMacro();
    workload::Layer layer = workload::resnet18().layers[5];
    std::shared_ptr<const PerActionTable> nominal =
        cachedPrecompute(arch, layer);
    Arch low_v = arch;
    low_v.supplyVoltage = 0.71;
    std::shared_ptr<const PerActionTable> scaled =
        cachedPrecompute(low_v, layer);
    EXPECT_NE(nominal.get(), scaled.get());
    EXPECT_EQ(perActionCacheStats().entries, 2u);

    // Same key returns the same immutable table.
    EXPECT_EQ(cachedPrecompute(arch, layer).get(), nominal.get());
    clearPerActionCache();
}

TEST(PerActionCache, PoisonedEntriesStayCachedForDeterminism)
{
    // A design whose precompute fails (15-bit ADC exceeds the survey
    // regression) must poison its cache entry, not erase it: later
    // callers of the same key rethrow the cached failure as a *hit*, so
    // hit/miss counts stay a pure function of the unique-key set — the
    // invariant the sweep executor's byte-identical cache line relies
    // on when several grid points share a failing design.
    clearPerActionCache();
    macros::MacroParams params = macros::defaultsByName("base");
    params.adcBits = 15;
    Arch arch = macros::macroByName("base", params);
    workload::Layer layer = workload::resnet18().layers[5];

    EXPECT_THROW(cachedPrecompute(arch, layer), cimloop::FatalError);
    PerActionCacheStats first = perActionCacheStats();
    EXPECT_EQ(first.misses, 1u);
    EXPECT_EQ(first.hits, 0u);

    EXPECT_THROW(cachedPrecompute(arch, layer), cimloop::FatalError);
    PerActionCacheStats second = perActionCacheStats();
    EXPECT_EQ(second.misses, 1u) << "poisoned entry was re-missed";
    EXPECT_EQ(second.hits, 1u);
    clearPerActionCache();
}

TEST(PerActionCache, MatchesUncachedPrecompute)
{
    clearPerActionCache();
    Arch arch = baseMacro();
    workload::Layer layer = workload::resnet18().layers[9];
    std::shared_ptr<const PerActionTable> cached =
        cachedPrecompute(arch, layer);
    PerActionTable direct = precompute(arch, layer);
    ASSERT_EQ(cached->nodes.size(), direct.nodes.size());
    mapping::Mapper mapper(arch.hierarchy, direct.extLayer);
    mapping::Mapping m = mapper.greedy();
    Evaluation from_cache = evaluate(arch, *cached, m);
    Evaluation from_direct = evaluate(arch, direct, m);
    EXPECT_DOUBLE_EQ(from_cache.energyPj, from_direct.energyPj);
    EXPECT_DOUBLE_EQ(from_cache.latencyNs, from_direct.latencyNs);
    clearPerActionCache();
}

} // namespace
} // namespace cimloop::engine
