#include "cimloop/engine/evaluate.hh"

#include <gtest/gtest.h>

#include "cimloop/macros/macros.hh"
#include "cimloop/workload/networks.hh"

namespace cimloop::engine {
namespace {

TEST(Pareto, FrontierIsNondominatedAndSorted)
{
    Arch arch = macros::baseMacro();
    workload::Layer layer = workload::resnet18().layers[6];
    std::vector<ParetoPoint> frontier =
        paretoFrontier(arch, layer, 200, 7);
    ASSERT_FALSE(frontier.empty());
    for (std::size_t i = 1; i < frontier.size(); ++i) {
        // Energy strictly increases along the frontier...
        EXPECT_GT(frontier[i].eval.energyPj,
                  frontier[i - 1].eval.energyPj);
        // ...and latency strictly decreases (else the point would be
        // dominated).
        EXPECT_LT(frontier[i].eval.latencyNs,
                  frontier[i - 1].eval.latencyNs);
    }
}

TEST(Pareto, ExtremesMatchSingleObjectiveSearch)
{
    Arch arch = macros::baseMacro();
    workload::Layer layer = workload::resnet18().layers[6];
    std::vector<ParetoPoint> frontier =
        paretoFrontier(arch, layer, 150, 3);
    SearchResult energy = searchMappings(arch, layer, 150, 3,
                                         Objective::Energy);
    SearchResult delay = searchMappings(arch, layer, 150, 3,
                                        Objective::Delay);
    // Same seed, same samples: the frontier ends are the single-
    // objective optima.
    EXPECT_DOUBLE_EQ(frontier.front().eval.energyPj,
                     energy.best.energyPj);
    EXPECT_DOUBLE_EQ(frontier.back().eval.latencyNs,
                     delay.best.latencyNs);
}

TEST(Pareto, FrontierMappingsReplayExactly)
{
    Arch arch = macros::baseMacro();
    workload::Layer layer = workload::resnet18().layers[10];
    PerActionTable table = precompute(arch, layer);
    for (const ParetoPoint& p : paretoFrontier(arch, layer, 80, 2)) {
        Evaluation replay = evaluate(arch, table, p.mapping);
        EXPECT_DOUBLE_EQ(replay.energyPj, p.eval.energyPj);
        EXPECT_DOUBLE_EQ(replay.latencyNs, p.eval.latencyNs);
    }
}

TEST(Csv, RowsPerLayerPlusTotal)
{
    Arch arch = macros::baseMacro();
    workload::Network net = workload::maxUtilMvm(64, 64, 32);
    net.layers[0].count = 2;
    NetworkEvaluation ev = evaluateNetwork(arch, net, 30, 1);
    std::string csv = toCsv(ev, net);
    // header + 1 layer + total = 3 lines.
    int lines = 0;
    for (char c : csv)
        lines += (c == '\n');
    EXPECT_EQ(lines, 3);
    EXPECT_NE(csv.find("mvm,2,"), std::string::npos);
    EXPECT_NE(csv.find("TOTAL"), std::string::npos);
}

} // namespace
} // namespace cimloop::engine
