/**
 * Engine pipeline details: representation plumbing (encodings, slice
 * mixtures), profile overrides, metric identities, and leakage/latency
 * interactions.
 */
#include "cimloop/engine/evaluate.hh"

#include <gtest/gtest.h>

#include "cimloop/macros/macros.hh"
#include "cimloop/workload/networks.hh"

namespace cimloop::engine {
namespace {

using macros::baseMacro;
using macros::MacroParams;
using workload::dimIndex;
using workload::Dim;
using workload::matmulLayer;

workload::Layer
mvm(std::int64_t m, std::int64_t c, std::int64_t k)
{
    workload::Layer l = matmulLayer("mvm", m, c, k);
    l.network = "mvm";
    return l;
}

TEST(ProfileOverride, DrivesDataValueDependence)
{
    Arch arch = baseMacro();
    workload::Layer layer = mvm(16, 128, 128);

    dist::OperandProfile small, large;
    small.inputs = dist::Pmf::delta(3.0);
    small.weights = dist::Pmf::delta(2.0);
    small.outputs = dist::Pmf::delta(0.0);
    large.inputs = dist::Pmf::delta(120.0);
    large.weights = dist::Pmf::delta(120.0);
    large.outputs = dist::Pmf::delta(0.0);

    PerActionTable t_small = precompute(arch, layer, &small);
    PerActionTable t_large = precompute(arch, layer, &large);
    mapping::Mapper mapper(arch.hierarchy, t_small.extLayer);
    mapping::Mapping m = mapper.greedy();

    Evaluation e_small = evaluate(arch, t_small, m);
    Evaluation e_large = evaluate(arch, t_large, m);
    // Larger values drive more DAC charge and cell current.
    EXPECT_GT(e_large.energyPj, e_small.energyPj);
}

TEST(ProfileOverride, DefaultSynthesizesByNetwork)
{
    Arch arch = baseMacro();
    workload::Network net = workload::resnet18();
    PerActionTable a = precompute(arch, net.layers[3]);
    PerActionTable b = precompute(arch, net.layers[9]);
    // Per-layer distributions differ, so per-action energies differ.
    int dac = arch.hierarchy.indexOf("dac_bank");
    EXPECT_NE(a.nodes[dac].actionEnergyPj[0],
              b.nodes[dac].actionEnergyPj[0]);
}

TEST(Representation, AdcSeesItsOwnResolution)
{
    MacroParams p = macros::baseDefaults();
    p.adcBits = 9;
    Arch arch = baseMacro(p);
    PerActionTable table = precompute(arch, mvm(4, 16, 16));
    int adc = arch.hierarchy.indexOf("adc");
    int dac = arch.hierarchy.indexOf("dac_bank");
    // 9b ADC converts cost much more than the 5b default would.
    MacroParams p5 = macros::baseDefaults();
    Arch arch5 = baseMacro(p5);
    PerActionTable table5 = precompute(arch5, mvm(4, 16, 16));
    EXPECT_GT(table.nodes[adc].actionEnergyPj[2],
              10.0 * table5.nodes[adc].actionEnergyPj[2]);
    // DAC unaffected by the ADC change.
    EXPECT_DOUBLE_EQ(table.nodes[dac].actionEnergyPj[0],
                     table5.nodes[dac].actionEnergyPj[0]);
}

TEST(Representation, EncodingChangesEnergy)
{
    workload::Layer layer = workload::resnet18().layers[4];
    MacroParams p = macros::baseDefaults();
    p.inputEncoding = dist::Encoding::Offset;
    Arch offset_arch = baseMacro(p);
    p.inputEncoding = dist::Encoding::TwosComplement;
    Arch twos_arch = baseMacro(p);
    int dac = offset_arch.hierarchy.indexOf("dac_bank");
    double e_offset =
        precompute(offset_arch, layer).nodes[dac].actionEnergyPj[0];
    double e_twos =
        precompute(twos_arch, layer).nodes[dac].actionEnergyPj[0];
    // Offset encoding pins ReLU activations near mid-scale; small
    // two's-complement codes convert cheaper (paper Fig. 4).
    EXPECT_GT(e_offset, e_twos);
}

TEST(Metrics, Identities)
{
    Arch arch = baseMacro();
    SearchResult sr = searchMappings(arch, mvm(64, 128, 128), 50, 1);
    const Evaluation& ev = sr.best;
    EXPECT_NEAR(ev.topsPerWatt(), 2.0 * ev.macs / ev.energyPj,
                1e-9 * ev.topsPerWatt());
    EXPECT_NEAR(ev.energyPerMacPj() * ev.macs, ev.energyPj,
                1e-6 * ev.energyPj);
    EXPECT_NEAR(ev.macsPerSecond() * ev.latencyNs * 1e-9, ev.macs,
                1e-6 * ev.macs);
    EXPECT_GT(ev.topsPerMm2(), 0.0);
}

TEST(Metrics, ZeroGuards)
{
    Evaluation ev;
    EXPECT_DOUBLE_EQ(ev.energyPerMacPj(), 0.0);
    EXPECT_DOUBLE_EQ(ev.topsPerWatt(), 0.0);
    EXPECT_DOUBLE_EQ(ev.macsPerSecond(), 0.0);
    EXPECT_DOUBLE_EQ(ev.topsPerMm2(), 0.0);
}

TEST(Throughput, BitSerialCostsSteps)
{
    // 1b DAC streams 8 slices per 8b input: ~8x the steps of an 8b DAC.
    workload::Layer layer = mvm(64, 128, 128);
    MacroParams p1 = macros::baseDefaults();
    p1.dacBits = 1;
    MacroParams p8 = macros::baseDefaults();
    p8.dacBits = 8;
    Arch serial = baseMacro(p1);
    Arch parallel = baseMacro(p8);
    PerActionTable ts = precompute(serial, layer);
    PerActionTable tp = precompute(parallel, layer);
    Evaluation es = evaluate(
        serial, ts, mapping::Mapper(serial.hierarchy, ts.extLayer).greedy());
    Evaluation ep = evaluate(
        parallel, tp,
        mapping::Mapper(parallel.hierarchy, tp.extLayer).greedy());
    EXPECT_NEAR(static_cast<double>(es.steps) / ep.steps, 8.0, 1e-9);
}

TEST(MacroHelpers, MacroOnlyEnergyExcludesBuffer)
{
    Arch arch = baseMacro();
    PerActionTable table = precompute(arch, mvm(64, 128, 128));
    mapping::Mapper mapper(arch.hierarchy, table.extLayer);
    Evaluation ev = evaluate(arch, table, mapper.greedy());
    double macro_only = macros::macroOnlyEnergyPj(arch, ev);
    int buffer = arch.hierarchy.indexOf("buffer");
    EXPECT_NEAR(macro_only + ev.nodeEnergyPj[buffer], ev.energyPj,
                1e-6 * ev.energyPj);
    EXPECT_GT(macros::macroTopsPerWatt(arch, ev), ev.topsPerWatt());
}

TEST(IdleFraction, ChargesUnderutilizedArrays)
{
    // Same tiny layer on a huge array: idle cells burn energy.
    workload::Layer layer = mvm(64, 16, 16);
    MacroParams p = macros::baseDefaults();
    p.rows = 512;
    p.cols = 512;
    Arch arch = baseMacro(p);
    PerActionTable table = precompute(arch, layer);
    mapping::Mapper mapper(arch.hierarchy, table.extLayer);
    mapping::Mapping m = mapper.greedy();

    Evaluation charged = evaluate(arch, table, m);
    // Zero the idle fraction and re-precompute: energy must drop.
    int cells = arch.hierarchy.indexOf("cells");
    arch.hierarchy.nodes[cells].attributes["idle_fraction"] =
        yaml::Node::makeFloat(0.0);
    PerActionTable table2 = precompute(arch, layer);
    Evaluation uncharged = evaluate(arch, table2, m);
    EXPECT_GT(charged.nodeEnergyPj[cells],
              1.5 * uncharged.nodeEnergyPj[cells]);
}

TEST(Search, EdpObjectiveBalances)
{
    Arch arch = baseMacro();
    workload::Layer layer = workload::resnet18().layers[7];
    SearchResult edp = searchMappings(arch, layer, 80, 5, Objective::Edp);
    SearchResult en = searchMappings(arch, layer, 80, 5,
                                     Objective::Energy);
    SearchResult de = searchMappings(arch, layer, 80, 5,
                                     Objective::Delay);
    double edp_val = edp.best.energyPj * edp.best.latencyNs;
    EXPECT_LE(edp_val,
              en.best.energyPj * en.best.latencyNs * (1 + 1e-9));
    EXPECT_LE(edp_val,
              de.best.energyPj * de.best.latencyNs * (1 + 1e-9));
}

} // namespace
} // namespace cimloop::engine
