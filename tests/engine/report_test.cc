#include "cimloop/engine/evaluate.hh"

#include <gtest/gtest.h>

#include "cimloop/macros/macros.hh"
#include "cimloop/workload/networks.hh"

namespace cimloop::engine {
namespace {

TEST(Report, ListsComponentsAndTotals)
{
    Arch arch = macros::baseMacro();
    workload::Layer layer = workload::matmulLayer("mvm", 32, 128, 128);
    layer.network = "mvm";
    SearchResult sr = searchMappings(arch, layer, 40, 1);
    std::string report = formatReport(arch, sr.best);
    for (const char* expected :
         {"buffer", "dac_bank", "adc", "cells", "total:", "TOPS/W"}) {
        EXPECT_NE(report.find(expected), std::string::npos) << expected;
    }
    // Free containers are suppressed.
    EXPECT_EQ(report.find("column "), std::string::npos);
}

TEST(Report, InvalidEvaluationSaysWhy)
{
    Arch arch = macros::baseMacro();
    Evaluation bad;
    bad.invalidReason = "factor mismatch somewhere";
    std::string report = formatReport(arch, bad);
    EXPECT_NE(report.find("factor mismatch"), std::string::npos);
}

TEST(Parallel, MatchesSequentialForSameSeed)
{
    Arch arch = macros::baseMacro();
    workload::Network net = workload::mobileNetV3();
    net.layers.resize(6); // keep the test quick
    for (std::size_t i = 0; i < net.layers.size(); ++i)
        net.layers[i].networkLayers = 6;
    NetworkEvaluation seq = evaluateNetwork(arch, net, 40, 9);
    NetworkEvaluation par = evaluateNetworkParallel(arch, net, 4, 40, 9);
    ASSERT_EQ(par.layers.size(), seq.layers.size());
    EXPECT_DOUBLE_EQ(par.energyPj, seq.energyPj);
    EXPECT_DOUBLE_EQ(par.latencyNs, seq.latencyNs);
    EXPECT_DOUBLE_EQ(par.macs, seq.macs);
    for (std::size_t i = 0; i < seq.layers.size(); ++i) {
        EXPECT_DOUBLE_EQ(par.layers[i].best.energyPj,
                         seq.layers[i].best.energyPj)
            << net.layers[i].name;
    }
}

TEST(Parallel, SingleThreadFallsThrough)
{
    Arch arch = macros::baseMacro();
    workload::Network net = workload::maxUtilMvm(64, 64, 32);
    NetworkEvaluation a = evaluateNetworkParallel(arch, net, 1, 30, 2);
    NetworkEvaluation b = evaluateNetwork(arch, net, 30, 2);
    EXPECT_DOUBLE_EQ(a.energyPj, b.energyPj);
}

} // namespace
} // namespace cimloop::engine
