/**
 * FaultModel spec parsing / validation and the analytic PMF
 * perturbations (stuck-at atoms, mean-preserving variance inflation,
 * ADC offset/noise) that mirror the value-level injection.
 */
#include "cimloop/faults/faults.hh"

#include <cmath>

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"
#include "cimloop/yaml/parser.hh"

namespace cimloop::faults {
namespace {

using dist::Pmf;

/** Runs f, expecting a FatalError whose message contains @p needle. */
template <typename F>
void
expectFatalContaining(F f, const std::string& needle)
{
    try {
        f();
        FAIL() << "expected FatalError mentioning '" << needle << "'";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "message was: " << e.what();
    }
}

TEST(FaultSpec, DefaultIsDisabled)
{
    FaultModel m;
    EXPECT_FALSE(m.enabled());
    EXPECT_FALSE(m.cellFaultsEnabled());
    EXPECT_FALSE(m.adcFaultsEnabled());
    EXPECT_NO_THROW(m.validate());
    EXPECT_DOUBLE_EQ(m.survivorRate(), 1.0);
    EXPECT_DOUBLE_EQ(m.varianceFactor(), 1.0);
}

TEST(FaultSpec, ParsesBareMapping)
{
    FaultModel m = FaultModel::fromYaml(yaml::parse(
        "stuck_off_rate: 0.01\n"
        "stuck_on_rate: 0.002\n"
        "conductance_sigma: 0.15\n"
        "adc_offset: 0.02\n"
        "adc_noise_sigma: 0.01\n"
        "seed: 7\n"));
    EXPECT_DOUBLE_EQ(m.stuckOffRate, 0.01);
    EXPECT_DOUBLE_EQ(m.stuckOnRate, 0.002);
    EXPECT_DOUBLE_EQ(m.conductanceSigma, 0.15);
    EXPECT_DOUBLE_EQ(m.adcOffset, 0.02);
    EXPECT_DOUBLE_EQ(m.adcNoiseSigma, 0.01);
    EXPECT_EQ(m.seed, 7u);
    EXPECT_TRUE(m.enabled());
    EXPECT_TRUE(m.cellFaultsEnabled());
    EXPECT_TRUE(m.adcFaultsEnabled());
}

TEST(FaultSpec, ParsesDocumentWithFaultsKey)
{
    FaultModel m = FaultModel::fromYaml(yaml::parse(
        "faults:\n"
        "  conductance_sigma: 0.3\n"));
    EXPECT_DOUBLE_EQ(m.conductanceSigma, 0.3);
    EXPECT_TRUE(m.cellFaultsEnabled());
    EXPECT_FALSE(m.adcFaultsEnabled());
}

TEST(FaultSpec, ValidationNamesTheOffendingKey)
{
    expectFatalContaining(
        [] {
            FaultModel m;
            m.stuckOffRate = 1.5;
            m.validate();
        },
        "faults.stuck_off_rate");
    expectFatalContaining(
        [] {
            FaultModel m;
            m.stuckOnRate = -0.1;
            m.validate();
        },
        "faults.stuck_on_rate");
    expectFatalContaining(
        [] {
            FaultModel m;
            m.stuckOffRate = 0.7;
            m.stuckOnRate = 0.7;
            m.validate();
        },
        "must not exceed 1");
    expectFatalContaining(
        [] {
            FaultModel m;
            m.conductanceSigma = 0.9;
            m.validate();
        },
        "faults.conductance_sigma");
    expectFatalContaining(
        [] {
            FaultModel m;
            m.adcOffset = 1.2;
            m.validate();
        },
        "faults.adc_offset");
    expectFatalContaining(
        [] {
            FaultModel m;
            m.adcNoiseSigma = -0.5;
            m.validate();
        },
        "faults.adc_noise_sigma");
}

TEST(FaultSpec, YamlErrors)
{
    expectFatalContaining(
        [] { FaultModel::fromYaml(yaml::parse("typo_rate: 0.1\n")); },
        "unknown fault spec key 'faults.typo_rate'");
    expectFatalContaining(
        [] { FaultModel::fromYaml(yaml::parse("seed: -3\n")); },
        "faults.seed must be >= 0");
    // Out-of-range values fail through validate() with the key named.
    expectFatalContaining(
        [] {
            FaultModel::fromYaml(yaml::parse("conductance_sigma: 2\n"));
        },
        "faults.conductance_sigma");
    EXPECT_THROW(FaultModel::fromFile("/nonexistent/faults.yaml"),
                 FatalError);
}

TEST(FaultSeed, MixesLayerIdentity)
{
    FaultModel m;
    m.seed = 5;
    std::uint64_t a = layerFaultSeed(m, "conv1", 0);
    EXPECT_EQ(a, layerFaultSeed(m, "conv1", 0)); // reproducible
    EXPECT_NE(a, layerFaultSeed(m, "conv2", 0)); // name matters
    EXPECT_NE(a, layerFaultSeed(m, "conv1", 1)); // index matters
    m.seed = 6;
    EXPECT_NE(a, layerFaultSeed(m, "conv1", 0)); // model seed matters
}

TEST(Perturb, ConductancesDeterministicPerCell)
{
    FaultModel m;
    m.stuckOffRate = 0.1;
    m.stuckOnRate = 0.05;
    m.conductanceSigma = 0.3;
    std::vector<double> a(512, 0.5), b(512, 0.5);
    perturbConductances(m, 99, a);
    perturbConductances(m, 99, b);
    EXPECT_EQ(a, b); // same seed -> identical pattern
    std::vector<double> c(512, 0.5);
    perturbConductances(m, 100, c);
    EXPECT_NE(a, c); // different fault seed -> different pattern

    // The pattern of cell i depends only on (model, seed, i): a prefix
    // of the array perturbs identically regardless of array length.
    std::vector<double> prefix(64, 0.5);
    perturbConductances(m, 99, prefix);
    for (std::size_t i = 0; i < prefix.size(); ++i)
        EXPECT_DOUBLE_EQ(prefix[i], a[i]) << "cell " << i;
}

TEST(Perturb, ConductancesRealizeStuckRates)
{
    FaultModel m;
    m.stuckOffRate = 0.2;
    m.stuckOnRate = 0.1;
    std::vector<double> g(20000, 0.5);
    perturbConductances(m, 7, g);
    std::size_t off = 0, on = 0;
    for (double v : g) {
        off += v == 0.0;
        on += v == 1.0;
    }
    EXPECT_NEAR(static_cast<double>(off) / g.size(), 0.2, 0.02);
    EXPECT_NEAR(static_cast<double>(on) / g.size(), 0.1, 0.02);
}

TEST(Perturb, VariationIsMeanPreserving)
{
    FaultModel m;
    m.conductanceSigma = 0.4;
    std::vector<double> g(200000, 0.5);
    perturbConductances(m, 3, g);
    double sum = 0.0, sum2 = 0.0;
    for (double v : g) {
        sum += v;
        sum2 += v * v;
    }
    double mean = sum / g.size();
    double mean2 = sum2 / g.size();
    // E[g'] = g and E[g'^2] = g^2 * exp(sigma^2) by construction.
    EXPECT_NEAR(mean, 0.5, 0.005);
    EXPECT_NEAR(mean2, 0.25 * m.varianceFactor(), 0.01);
}

TEST(Pmf, CellLevelsMatchLognormalMoments)
{
    FaultModel m;
    m.conductanceSigma = 0.5;
    Pmf levels = Pmf::uniformInt(0, 3);
    Pmf out = perturbedCellLevels(m, levels, 3.0);
    // Variation alone: exact first moment, second moment * exp(sigma^2).
    EXPECT_NEAR(out.mean(), levels.mean(), 1e-12);
    EXPECT_NEAR(out.meanSquare(),
                levels.meanSquare() * m.varianceFactor(), 1e-9);
}

TEST(Pmf, CellLevelsCarryStuckAtoms)
{
    FaultModel m;
    m.stuckOffRate = 0.25;
    m.stuckOnRate = 0.125;
    Pmf levels = Pmf::delta(2.0);
    Pmf out = perturbedCellLevels(m, levels, 3.0);
    EXPECT_NEAR(out.probOf(0.0), 0.25, 1e-12);
    EXPECT_NEAR(out.probOf(3.0), 0.125, 1e-12);
    EXPECT_NEAR(out.probOf(2.0), 1.0 - 0.25 - 0.125, 1e-12);
    // Mixture mean: survivors * 2 + stuck-on * 3.
    EXPECT_NEAR(out.mean(), 0.625 * 2.0 + 0.125 * 3.0, 1e-12);
}

TEST(Pmf, CellCodesStayOnTheLattice)
{
    FaultModel m;
    m.stuckOffRate = 0.05;
    m.stuckOnRate = 0.05;
    m.conductanceSigma = 0.6;
    Pmf codes = Pmf::uniformInt(0, 15);
    Pmf out = perturbedCellCodes(m, codes, 15.0);
    double total = 0.0;
    for (const Pmf::Point& pt : out.points()) {
        EXPECT_DOUBLE_EQ(pt.value, std::round(pt.value));
        EXPECT_GE(pt.value, 0.0);
        EXPECT_LE(pt.value, 15.0);
        total += pt.prob;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Pmf, AdcCodesShiftAndSpread)
{
    FaultModel m;
    m.adcOffset = 0.25;
    Pmf codes = Pmf::uniformInt(4, 12);
    Pmf shifted = perturbedAdcCodes(m, codes, 16.0);
    // Pure offset: every code moves by offset * max_code = 4.
    EXPECT_NEAR(shifted.mean(), codes.mean() + 4.0, 1e-12);

    m.adcOffset = 0.0;
    m.adcNoiseSigma = 0.125;
    Pmf noisy = perturbedAdcCodes(m, codes, 16.0);
    // Symmetric +/- 2 kick away from the clamp edges: mean unchanged,
    // variance grows by kick^2.
    EXPECT_NEAR(noisy.mean(), codes.mean(), 1e-12);
    EXPECT_NEAR(noisy.variance(), codes.variance() + 4.0, 1e-9);

    // Disabled model passes the PMF through untouched.
    FaultModel off;
    Pmf same = perturbedAdcCodes(off, codes, 16.0);
    EXPECT_NEAR(same.mean(), codes.mean(), 0.0);
    EXPECT_EQ(same.size(), codes.size());
}

} // namespace
} // namespace cimloop::faults
