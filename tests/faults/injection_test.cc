/**
 * End-to-end fault injection: zero-rate models are bit-identical to the
 * fault-free baseline, injected refsim runs are bit-identical at any
 * thread count, the statistical model is reproducible run to run, and
 * truth vs model stay in agreement under faults (the paper's accuracy
 * contract extended to non-ideal devices).
 */
#include <cmath>

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"
#include "cimloop/faults/faults.hh"
#include "cimloop/refsim/refsim.hh"
#include "cimloop/workload/networks.hh"

namespace cimloop::refsim {
namespace {

RefSimConfig
smallConfig()
{
    RefSimConfig c;
    c.rows = 32;
    c.cols = 32;
    c.inputBits = 8;
    c.weightBits = 8;
    c.adcBits = 5;
    c.maxVectors = 16;
    return c;
}

workload::Layer
testLayer(int index = 3)
{
    workload::Network net = workload::resnet18();
    workload::Layer l = net.layers[index];
    l.dims[workload::dimIndex(workload::Dim::P)] = 4;
    l.dims[workload::dimIndex(workload::Dim::Q)] = 4;
    return l;
}

faults::FaultModel
injected()
{
    faults::FaultModel m;
    m.stuckOffRate = 0.02;
    m.stuckOnRate = 0.01;
    m.conductanceSigma = 0.2;
    m.adcOffset = 0.01;
    m.adcNoiseSigma = 0.01;
    m.seed = 11;
    return m;
}

void
expectBitIdentical(const RefSimResult& a, const RefSimResult& b)
{
    EXPECT_DOUBLE_EQ(a.dacPj, b.dacPj);
    EXPECT_DOUBLE_EQ(a.cellPj, b.cellPj);
    EXPECT_DOUBLE_EQ(a.adcPj, b.adcPj);
    EXPECT_DOUBLE_EQ(a.digitalPj, b.digitalPj);
    EXPECT_DOUBLE_EQ(a.bufferPj, b.bufferPj);
    EXPECT_EQ(a.valuesSimulated, b.valuesSimulated);
}

TEST(Injection, ZeroRateModelBitIdenticalToBaseline)
{
    RefSimConfig clean = smallConfig();
    RefSimConfig zeroed = smallConfig();
    // Enabled-looking model with every mechanism at zero must not
    // disturb a single RNG draw or energy term.
    zeroed.faults.seed = 42;
    workload::Layer l = testLayer();
    expectBitIdentical(simulateValueLevel(clean, l),
                       simulateValueLevel(zeroed, l));

    dist::OperandProfile prof;
    simulateValueLevel(clean, l, &prof);
    expectBitIdentical(estimateStatistical(clean, l, prof),
                       estimateStatistical(zeroed, l, prof));
}

TEST(Injection, ValueLevelBitIdenticalAcrossThreads)
{
    RefSimConfig c = smallConfig();
    c.faults = injected();
    workload::Layer l = testLayer();
    c.threads = 1;
    RefSimResult serial = simulateValueLevel(c, l);
    for (int threads : {2, 8}) {
        c.threads = threads;
        RefSimResult parallel = simulateValueLevel(c, l);
        SCOPED_TRACE(threads);
        expectBitIdentical(serial, parallel);
    }
}

TEST(Injection, StatisticalReproducibleAcrossRuns)
{
    RefSimConfig c = smallConfig();
    c.faults = injected();
    workload::Layer l = testLayer();
    dist::OperandProfile prof;
    simulateValueLevel(c, l, &prof);
    expectBitIdentical(estimateStatistical(c, l, prof),
                       estimateStatistical(c, l, prof));
}

TEST(Injection, FaultSeedChangesThePattern)
{
    RefSimConfig c = smallConfig();
    c.faults = injected();
    workload::Layer l = testLayer();
    RefSimResult a = simulateValueLevel(c, l);
    c.faults.seed = 12;
    RefSimResult b = simulateValueLevel(c, l);
    // Different fault pattern, same data: totals differ but stay close.
    EXPECT_NE(a.totalPj(), b.totalPj());
    EXPECT_NEAR(a.totalPj() / b.totalPj(), 1.0, 0.2);
}

TEST(Injection, TruthAndModelAgreeUnderFaults)
{
    // The statistical perturbation matches the value-level injection's
    // first two moments exactly, so the truth-vs-model error under
    // faults stays in the same few-percent band as the clean comparison.
    RefSimConfig c = smallConfig();
    c.maxVectors = 24;
    c.faults = injected();
    for (int idx : {2, 5, 9}) {
        workload::Layer l = testLayer(idx);
        dist::OperandProfile prof;
        RefSimResult truth = simulateValueLevel(c, l, &prof);
        RefSimResult model = estimateStatistical(c, l, prof);
        double err = model.totalPj() / truth.totalPj() - 1.0;
        EXPECT_LT(std::abs(err), 0.10) << "layer index " << idx;
    }
}

TEST(Injection, StuckOffCellsDrawLessCellEnergy)
{
    RefSimConfig c = smallConfig();
    workload::Layer l = testLayer();
    RefSimResult clean = simulateValueLevel(c, l);
    c.faults.stuckOffRate = 0.5;
    RefSimResult faulty = simulateValueLevel(c, l);
    // Half the cells read as G_off: column currents (and the
    // value-aware cell read energy) drop measurably.
    EXPECT_LT(faulty.cellPj, clean.cellPj);
}

TEST(Injection, AdcOffsetShiftsAdcEnergy)
{
    RefSimConfig c = smallConfig();
    workload::Layer l = testLayer();
    RefSimResult clean = simulateValueLevel(c, l);
    c.faults.adcOffset = 0.5;
    RefSimResult faulty = simulateValueLevel(c, l);
    // The value-aware ADC spends more on the systematically larger
    // readout codes; everything else is untouched.
    EXPECT_GT(faulty.adcPj, clean.adcPj);
    EXPECT_DOUBLE_EQ(faulty.cellPj, clean.cellPj);
    EXPECT_DOUBLE_EQ(faulty.dacPj, clean.dacPj);
}

TEST(Injection, InvalidModelIsFatalUpFront)
{
    RefSimConfig c = smallConfig();
    c.faults.conductanceSigma = 5.0;
    EXPECT_THROW(simulateValueLevel(c, testLayer()), FatalError);
    dist::OperandProfile prof;
    RefSimConfig ok = smallConfig();
    simulateValueLevel(ok, testLayer(), &prof);
    EXPECT_THROW(estimateStatistical(c, testLayer(), prof), FatalError);
}

} // namespace
} // namespace cimloop::refsim
