/**
 * Physical layouts and the bank-conflict model: LayoutSpec parsing /
 * validation / presets, the closed-form slowdown (serialization on one
 * bank, conflict-free spreading, interleave and rank-order effects),
 * the conflict-free-reproduces-idealized engine property, and the
 * layout x mapping co-search determinism contract.
 */
#include "cimloop/layout/layout.hh"

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"
#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/models/bankconflict.hh"
#include "cimloop/workload/networks.hh"
#include "cimloop/yaml/parser.hh"

namespace cimloop::layout {
namespace {

using workload::Dim;
using workload::dimIndex;
using workload::DimSizes;
using workload::TensorKind;

/** Runs f, expecting a FatalError whose message contains @p needle. */
template <typename F>
void
expectFatalContaining(F f, const std::string& needle)
{
    try {
        f();
        FAIL() << "expected FatalError mentioning '" << needle << "'";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "message was: " << e.what();
    }
}

TEST(LayoutSpec, DefaultIsEmpty)
{
    LayoutSpec spec;
    EXPECT_TRUE(spec.empty());
    EXPECT_NO_THROW(spec.validate());
}

TEST(LayoutSpec, ParsesBareMappingAndLayoutKey)
{
    const char* bare =
        "name: banked\n"
        "nodes:\n"
        "  - node: buffer\n"
        "    tensors:\n"
        "      - tensor: Inputs\n"
        "        rank_order: [C, P]\n"
        "        banks: 4\n"
        "        interleave: 2\n"
        "      - tensor: Outputs\n"
        "        banks: 8\n";
    LayoutSpec spec = LayoutSpec::fromYaml(yaml::parse(bare));
    ASSERT_EQ(spec.nodes.size(), 1u);
    EXPECT_EQ(spec.name, "banked");
    EXPECT_EQ(spec.nodes[0].node, "buffer");
    ASSERT_EQ(spec.nodes[0].tensors.size(), 2u);
    const TensorLayout& in = spec.nodes[0].tensors[0];
    EXPECT_EQ(in.tensor, TensorKind::Input);
    ASSERT_EQ(in.rankOrder.size(), 2u);
    EXPECT_EQ(in.rankOrder[0], Dim::C);
    EXPECT_EQ(in.rankOrder[1], Dim::P);
    EXPECT_EQ(in.banks, 4);
    EXPECT_EQ(in.interleave, 2);
    const TensorLayout& out = spec.nodes[0].tensors[1];
    EXPECT_EQ(out.tensor, TensorKind::Output);
    EXPECT_TRUE(out.rankOrder.empty());
    EXPECT_EQ(out.banks, 8);

    // The same body under a top-level `layout:` key parses identically.
    LayoutSpec wrapped = LayoutSpec::fromYaml(
        yaml::parse(std::string("layout:\n  name: banked\n  nodes:\n"
                                "    - node: buffer\n      tensors:\n"
                                "        - tensor: Outputs\n"
                                "          banks: 8\n")));
    ASSERT_EQ(wrapped.nodes.size(), 1u);
    EXPECT_EQ(wrapped.nodes[0].tensors[0].banks, 8);
}

TEST(LayoutSpec, ValidationNamesTheOffendingKey)
{
    LayoutSpec spec;
    spec.nodes.push_back({"buffer", {{TensorKind::Input, {}, 0, 1}}});
    expectFatalContaining([&] { spec.validate(); },
                          "layout.nodes[0].tensors[0].banks");

    spec.nodes[0].tensors[0] = {TensorKind::Input, {}, 1, 0};
    expectFatalContaining([&] { spec.validate(); },
                          "layout.nodes[0].tensors[0].interleave");

    // A rank that is not an index dim of the tensor: Weights have no P.
    spec.nodes[0].tensors[0] = {TensorKind::Weight, {Dim::P}, 1, 1};
    expectFatalContaining([&] { spec.validate(); },
                          "layout.nodes[0].tensors[0].rank_order");

    // Duplicate rank in the order.
    spec.nodes[0].tensors[0] = {TensorKind::Input, {Dim::C, Dim::C}, 1, 1};
    expectFatalContaining([&] { spec.validate(); },
                          "layout.nodes[0].tensors[0].rank_order");

    // Duplicate tensor within one node.
    spec.nodes[0].tensors = {{TensorKind::Input, {}, 1, 1},
                             {TensorKind::Input, {}, 2, 1}};
    expectFatalContaining([&] { spec.validate(); }, "duplicate");

    // Duplicate node name.
    spec.nodes[0].tensors = {{TensorKind::Input, {}, 1, 1}};
    spec.nodes.push_back(spec.nodes[0]);
    expectFatalContaining([&] { spec.validate(); }, "duplicate");
}

TEST(LayoutSpec, YamlErrors)
{
    expectFatalContaining(
        [] { LayoutSpec::fromYaml(yaml::parse("typo: 1\n")); },
        "layout.typo");
    expectFatalContaining(
        [] {
            LayoutSpec::fromYaml(yaml::parse(
                "nodes:\n  - node: b\n    tensors:\n"
                "      - tensor: Sideways\n"));
        },
        "tensor");
    EXPECT_THROW(LayoutSpec::fromFile("/nonexistent/layout.yaml"),
                 FatalError);
}

TEST(LayoutSpec, ResolvesAgainstBaseMacro)
{
    engine::Arch arch = macros::baseMacro();
    LayoutSpec spec;
    spec.nodes.push_back({"buffer", {{TensorKind::Input, {}, 4, 1}}});
    ResolvedLayout resolved = resolveLayout(arch.hierarchy, spec);
    ASSERT_EQ(resolved.slots.size(), arch.hierarchy.nodes.size());
    EXPECT_TRUE(resolved.any);
    int buffer = arch.hierarchy.indexOf("buffer");
    ASSERT_GE(buffer, 0);
    const TensorLayout* tl = resolved.at(static_cast<std::size_t>(buffer),
                                         TensorKind::Input);
    ASSERT_NE(tl, nullptr);
    EXPECT_EQ(tl->banks, 4);
    EXPECT_EQ(resolved.at(static_cast<std::size_t>(buffer),
                          TensorKind::Weight),
              nullptr);

    // Unknown node and tensor-not-stored are spec errors.
    LayoutSpec bad_node;
    bad_node.nodes.push_back({"no_such", {{TensorKind::Input, {}, 1, 1}}});
    expectFatalContaining(
        [&] { resolveLayout(arch.hierarchy, bad_node); }, "no_such");
    LayoutSpec bad_tensor;
    bad_tensor.nodes.push_back(
        {"buffer", {{TensorKind::Weight, {}, 1, 1}}});
    expectFatalContaining(
        [&] { resolveLayout(arch.hierarchy, bad_tensor); }, "Weights");
}

TEST(LayoutSpec, EnumerationOrderIsPinned)
{
    // The candidate order is part of the co-search determinism contract:
    // changing it changes which layout wins objective ties.
    engine::Arch arch = macros::baseMacro();
    std::vector<LayoutSpec> all = enumerateLayouts(arch.hierarchy);
    ASSERT_EQ(all.size(), 7u);
    const char* names[] = {"default",     "banked2",     "banked4",
                           "banked8",     "banked4-rev", "banked8-rev",
                           "banked8-i4"};
    for (std::size_t i = 0; i < all.size(); ++i) {
        EXPECT_EQ(all[i].name, names[i]) << "candidate " << i;
        EXPECT_FALSE(all[i].empty()) << "candidate " << i;
    }
    // Candidate 0 is the naive baseline: canonical order, one bank.
    for (const NodeLayout& nl : all[0].nodes) {
        for (const TensorLayout& tl : nl.tensors) {
            EXPECT_EQ(tl.banks, 1);
            EXPECT_TRUE(tl.rankOrder.empty());
        }
    }
}

TEST(LayoutSpec, PresetsAndValueNames)
{
    engine::Arch arch = macros::baseMacro();
    LayoutSpec banked4 = presetLayout("banked4", arch.hierarchy);
    EXPECT_EQ(banked4.name, "banked4");
    EXPECT_FALSE(banked4.empty());
    EXPECT_NO_THROW(banked4.validate());
    expectFatalContaining(
        [&] { presetLayout("banked3", arch.hierarchy); }, "banked3");

    for (const char* ok : {"none", "search", "default", "banked8-i4",
                           "/tmp/x.yaml", "rel/lay.yml"})
        EXPECT_TRUE(isLayoutValueName(ok)) << ok;
    for (const char* bad : {"", "banked3", "layout.txt"})
        EXPECT_FALSE(isLayoutValueName(bad)) << bad;
}

TEST(BankConflict, LoneRequesterNeverConflicts)
{
    TensorLayout tl{TensorKind::Output, {}, 1, 1};
    DimSizes below = workload::onesDims();
    below[dimIndex(Dim::K)] = 64;
    DimSizes parallel = workload::onesDims();
    EXPECT_DOUBLE_EQ(
        models::bankConflictSlowdown(tl, below, parallel), 1.0);
}

TEST(BankConflict, SingleBankSerializesAllRequesters)
{
    // banks=1 is the naive baseline: every concurrent requester
    // serializes, so the slowdown equals the requester count.
    TensorLayout tl{TensorKind::Output, {}, 1, 1};
    DimSizes below = workload::onesDims();
    below[dimIndex(Dim::K)] = 16;
    below[dimIndex(Dim::P)] = 4;
    DimSizes parallel = workload::onesDims();
    parallel[dimIndex(Dim::K)] = 8;
    parallel[dimIndex(Dim::P)] = 2;
    EXPECT_DOUBLE_EQ(
        models::bankConflictSlowdown(tl, below, parallel), 16.0);
}

TEST(BankConflict, FullySpreadBanksAreConflictFree)
{
    // 8 requesters along K, contiguous sub-tiles of 1 element each,
    // 8 banks at interleave 1: every requester owns its own bank.
    TensorLayout tl{TensorKind::Output, {}, 8, 1};
    DimSizes below = workload::onesDims();
    below[dimIndex(Dim::K)] = 8;
    DimSizes parallel = workload::onesDims();
    parallel[dimIndex(Dim::K)] = 8;
    EXPECT_DOUBLE_EQ(
        models::bankConflictSlowdown(tl, below, parallel), 1.0);
}

TEST(BankConflict, InterleaveGroupsRequestersIntoOneLine)
{
    // Same spread, but one bank line now holds 8 elements: all 8
    // requesters land in line 0 of bank 0 and fully serialize.
    TensorLayout tl{TensorKind::Output, {}, 8, 8};
    DimSizes below = workload::onesDims();
    below[dimIndex(Dim::K)] = 8;
    DimSizes parallel = workload::onesDims();
    parallel[dimIndex(Dim::K)] = 8;
    EXPECT_DOUBLE_EQ(
        models::bankConflictSlowdown(tl, below, parallel), 8.0);
}

TEST(BankConflict, RankOrderDecidesTheSpread)
{
    // Weights tiled K=4 (parallel) x C=4: in canonical order K is
    // outer, so the 4 requesters sit 4 elements apart — k*4 mod 4
    // banks = always bank 0, full serialization. Pulling K innermost
    // makes them adjacent and conflict-free.
    DimSizes below = workload::onesDims();
    below[dimIndex(Dim::K)] = 4;
    below[dimIndex(Dim::C)] = 4;
    DimSizes parallel = workload::onesDims();
    parallel[dimIndex(Dim::K)] = 4;

    TensorLayout canonical{TensorKind::Weight, {}, 4, 1};
    EXPECT_DOUBLE_EQ(
        models::bankConflictSlowdown(canonical, below, parallel), 4.0);

    TensorLayout reordered{TensorKind::Weight, {Dim::K}, 4, 1};
    EXPECT_DOUBLE_EQ(
        models::bankConflictSlowdown(reordered, below, parallel), 1.0);
}

TEST(BankConflict, MoreBanksNeverSlowDown)
{
    // Fully parallel tile (sub-tile = 1 element per requester), so with
    // enough banks the spread eventually covers every requester.
    DimSizes below = workload::onesDims();
    below[dimIndex(Dim::K)] = 16;
    below[dimIndex(Dim::P)] = 4;
    DimSizes parallel = workload::onesDims();
    parallel[dimIndex(Dim::K)] = 16;
    parallel[dimIndex(Dim::P)] = 4;
    double prev = 1e300;
    for (std::int64_t banks : {1, 2, 4, 8, 16, 32, 64}) {
        TensorLayout tl{TensorKind::Output, {Dim::K, Dim::P}, banks, 1};
        double s = models::bankConflictSlowdown(tl, below, parallel);
        EXPECT_GE(s, 1.0);
        EXPECT_LE(s, prev) << banks << " banks";
        prev = s;
    }
    EXPECT_DOUBLE_EQ(prev, 1.0); // enough banks: fully conflict-free
}

TEST(BankConflict, InputHaloFoldsRSIntoPQ)
{
    // Inputs are indexed by halo'd P/Q, so spatial R requesters are
    // input-P requesters: with one bank the slowdown is the full
    // P x R fan, not just P.
    TensorLayout tl{TensorKind::Input, {}, 1, 1};
    DimSizes below = workload::onesDims();
    below[dimIndex(Dim::P)] = 4;
    below[dimIndex(Dim::R)] = 3;
    DimSizes parallel = workload::onesDims();
    parallel[dimIndex(Dim::P)] = 2;
    parallel[dimIndex(Dim::R)] = 3;
    EXPECT_DOUBLE_EQ(
        models::bankConflictSlowdown(tl, below, parallel), 6.0);
}

TEST(BankConflict, ConflictFreeLayoutReproducesIdealizedEngine)
{
    // The load-bearing byte-identity property: a layout whose slowdowns
    // are all exactly 1.0 must reproduce the idealized (no-layout)
    // evaluation bit-for-bit — x1.0 on the same accumulation order.
    engine::Arch arch = macros::baseMacro();
    workload::Layer layer = workload::matmulLayer("mvm", 64, 128, 128);
    layer.network = "mvm";
    engine::PerActionTable table = engine::precompute(arch, layer);
    mapping::Mapper mapper(arch.hierarchy, table.extLayer);
    mapping::Mapping m = mapper.greedy();

    LayoutSpec spec;
    spec.name = "wide";
    spec.nodes.push_back({"buffer",
                          {{TensorKind::Input, {}, 4096, 1},
                           {TensorKind::Output, {}, 4096, 1}}});
    ResolvedLayout resolved = resolveLayout(arch.hierarchy, spec);

    int buffer = arch.hierarchy.indexOf("buffer");
    ASSERT_GE(buffer, 0);
    spec::PerTensor<double> slow = models::bankConflictSlowdowns(
        resolved, arch.hierarchy, static_cast<std::size_t>(buffer), m);
    for (double s : slow)
        ASSERT_DOUBLE_EQ(s, 1.0) << "fixture is not conflict-free";

    engine::Evaluation ideal = evaluate(arch, table, m, nullptr);
    engine::Evaluation laid = evaluate(arch, table, m, &resolved);
    EXPECT_EQ(ideal.valid, laid.valid);
    EXPECT_EQ(ideal.energyPj, laid.energyPj);
    EXPECT_EQ(ideal.latencyNs, laid.latencyNs);
    EXPECT_EQ(ideal.areaUm2, laid.areaUm2);
    EXPECT_EQ(ideal.macs, laid.macs);
    EXPECT_EQ(ideal.steps, laid.steps);
    EXPECT_EQ(ideal.utilization, laid.utilization);
    EXPECT_EQ(laid.bankConflictCycles, 0.0);
    ASSERT_EQ(ideal.nodeEnergyPj.size(), laid.nodeEnergyPj.size());
    for (std::size_t i = 0; i < ideal.nodeEnergyPj.size(); ++i)
        EXPECT_EQ(ideal.nodeEnergyPj[i], laid.nodeEnergyPj[i]) << i;
}

TEST(BankConflict, SingleBankLayoutStretchesLatencyOnly)
{
    engine::Arch arch = macros::baseMacro();
    workload::Layer layer = workload::matmulLayer("mvm", 64, 128, 128);
    layer.network = "mvm";
    arch.includeLeakage = false; // leakage couples energy to latency
    engine::PerActionTable table = engine::precompute(arch, layer);
    mapping::Mapper mapper(arch.hierarchy, table.extLayer);
    mapping::Mapping m = mapper.greedy();

    engine::Evaluation ideal = evaluate(arch, table, m, nullptr);
    ResolvedLayout naive =
        resolveLayout(arch.hierarchy, defaultLayout(arch.hierarchy));
    engine::Evaluation laid = evaluate(arch, table, m, &naive);
    EXPECT_GT(laid.latencyNs, ideal.latencyNs);
    EXPECT_GT(laid.bankConflictCycles, 0.0);
    EXPECT_EQ(ideal.energyPj, laid.energyPj);
    EXPECT_EQ(ideal.areaUm2, laid.areaUm2);
}

TEST(CoSearch, BitIdenticalAcrossThreadCounts)
{
    engine::Arch arch = macros::baseMacro();
    arch.layoutSearch = true;
    workload::Layer layer = workload::resnet18().layers[8];
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        engine::SearchResult serial = engine::searchMappings(
            arch, layer, 60, seed, engine::Objective::Delay, 1);
        EXPECT_EQ(serial.layoutsEvaluated, 7);
        for (int threads : {2, 8}) {
            engine::SearchResult parallel = engine::searchMappings(
                arch, layer, 60, seed, engine::Objective::Delay,
                threads);
            EXPECT_TRUE(serial.bestMapping == parallel.bestMapping)
                << "seed " << seed << ", " << threads << " threads";
            EXPECT_EQ(serial.bestLayout.name, parallel.bestLayout.name);
            EXPECT_DOUBLE_EQ(serial.best.latencyNs,
                             parallel.best.latencyNs);
            EXPECT_DOUBLE_EQ(serial.best.energyPj,
                             parallel.best.energyPj);
            EXPECT_EQ(serial.evaluated, parallel.evaluated);
            EXPECT_EQ(serial.invalid, parallel.invalid);
            EXPECT_EQ(serial.rejected, parallel.rejected);
            EXPECT_EQ(serial.layoutsEvaluated,
                      parallel.layoutsEvaluated);
        }
    }
}

TEST(CoSearch, BeatsTheDefaultLayoutOnLatency)
{
    // The acceptance property: co-searching layouts must find a layout
    // strictly faster than the naive single-bank baseline.
    engine::Arch searched = macros::baseMacro();
    searched.layoutSearch = true;
    engine::Arch fixed = macros::baseMacro();
    fixed.layout = defaultLayout(fixed.hierarchy);

    workload::Layer layer = workload::matmulLayer("mvm", 64, 128, 128);
    layer.network = "mvm";
    engine::SearchResult best = engine::searchMappings(
        searched, layer, 40, 1, engine::Objective::Delay, 2);
    engine::SearchResult naive = engine::searchMappings(
        fixed, layer, 40, 1, engine::Objective::Delay, 2);
    EXPECT_LT(best.best.latencyNs, naive.best.latencyNs);
    EXPECT_NE(best.bestLayout.name, "default");
    EXPECT_EQ(naive.layoutsEvaluated, 1);
}

TEST(CoSearch, FixedLayoutIsTheOneCandidateCase)
{
    engine::Arch arch = macros::baseMacro();
    arch.layout = presetLayout("banked4", arch.hierarchy);
    workload::Layer layer = workload::matmulLayer("mvm", 64, 128, 128);
    layer.network = "mvm";
    engine::SearchResult sr = engine::searchMappings(arch, layer, 20, 1);
    EXPECT_EQ(sr.layoutsEvaluated, 1);
    EXPECT_EQ(sr.bestLayout.name, "banked4");
    EXPECT_TRUE(sr.best.valid);
}

TEST(CoSearch, NoLayoutKeepsTheIdealizedEngine)
{
    engine::Arch arch = macros::baseMacro();
    workload::Layer layer = workload::matmulLayer("mvm", 64, 128, 128);
    layer.network = "mvm";
    engine::SearchResult sr = engine::searchMappings(arch, layer, 20, 1);
    EXPECT_EQ(sr.layoutsEvaluated, 0);
    EXPECT_TRUE(sr.bestLayout.empty());
    EXPECT_EQ(sr.best.bankConflictCycles, 0.0);
}

} // namespace
} // namespace cimloop::layout
