#include "cimloop/macros/macros.hh"

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"
#include "cimloop/engine/evaluate.hh"
#include "cimloop/workload/networks.hh"

namespace cimloop::macros {
namespace {

using engine::Arch;
using engine::searchMappings;
using engine::SearchResult;
using workload::matmulLayer;

/** A layer that exactly fills a rows x cols array of 1b cells. */
workload::Layer
matchedLayer(const Arch& arch, std::int64_t rows, std::int64_t cols,
             std::int64_t vectors = 16)
{
    workload::Layer l = matmulLayer("mvm", vectors, rows, cols);
    l.network = "mvm";
    (void)arch;
    return l;
}

TEST(TableIII, DefaultsMatchPaper)
{
    MacroParams a = macroADefaults();
    EXPECT_EQ(a.rows, 768);
    EXPECT_EQ(a.cols, 768);
    EXPECT_DOUBLE_EQ(a.technologyNm, 65.0);
    EXPECT_EQ(a.adcBits, 8);
    EXPECT_EQ(a.outputReuseCols, 3); // Jia et al. fabricated 3-column reuse

    MacroParams b = macroBDefaults();
    EXPECT_EQ(b.rows, 64);
    EXPECT_DOUBLE_EQ(b.technologyNm, 7.0);
    EXPECT_EQ(b.inputBits, 4);
    EXPECT_EQ(b.adcBits, 4);

    MacroParams c = macroCDefaults();
    EXPECT_EQ(c.rows, 256);
    EXPECT_DOUBLE_EQ(c.technologyNm, 130.0);
    EXPECT_EQ(c.cellBits, 8); // analog weight: one cell per weight

    MacroParams d = macroDDefaults();
    EXPECT_EQ(d.cols, 128);
    EXPECT_DOUBLE_EQ(d.technologyNm, 22.0);
    EXPECT_EQ(d.weightBankRows, 512);
    EXPECT_EQ(d.dacBits, 8);
}

TEST(Builders, AllValidateAndEvaluate)
{
    for (const char* name : {"base", "A", "B", "C", "D", "digital"}) {
        Arch arch = macroByName(name);
        workload::Layer layer = matchedLayer(arch, 64, 32, 4);
        SearchResult sr = searchMappings(arch, layer, 40, 1);
        EXPECT_TRUE(sr.best.valid) << name;
        EXPECT_GT(sr.best.energyPj, 0.0) << name;
        EXPECT_GT(sr.best.topsPerWatt(), 0.05) << name;
        EXPECT_LT(sr.best.topsPerWatt(), 20000.0) << name;
    }
    EXPECT_THROW(macroByName("E"), FatalError);
}

TEST(MacroA, OutputReuseTradesAdcForDac)
{
    // Paper Fig. 12: reusing outputs between N columns increases output
    // reuse Nx (fewer ADC converts per MAC) but decreases input reuse Nx
    // (more DAC converts per MAC). As in the paper, each configuration
    // runs its own maximum-utilization MVM (dimensions matching the
    // array: reduction = rows x N, outputs fill the column groups).
    auto convertsPerOp = [&](int reuse_cols) {
        MacroParams p = macroADefaults();
        p.outputReuseCols = reuse_cols;
        Arch arch = macroA(p);
        std::int64_t groups = p.cols / reuse_cols;
        // WB = 8 weight-bit slices share the column groups with K.
        workload::Layer layer =
            matmulLayer("mvm", 8, p.rows * reuse_cols, groups / 8);
        layer.network = "mvm";
        engine::PerActionTable table = engine::precompute(arch, layer);
        mapping::Mapper mapper(arch.hierarchy, table.extLayer);
        mapping::NestResult nest = mapping::analyzeNest(
            arch.hierarchy, mapper.greedy(), table.extLayer);
        EXPECT_TRUE(nest.valid) << nest.invalidReason;
        int adc = arch.hierarchy.indexOf("adc");
        int dac = arch.hierarchy.indexOf("dac_bank");
        return std::pair{nest.nodes[adc].tensors[2].actions / nest.totalOps,
                         nest.nodes[dac].tensors[0].actions /
                             nest.totalOps};
    };

    auto [adc1, dac1] = convertsPerOp(1);
    auto [adc3, dac3] = convertsPerOp(3);
    EXPECT_NEAR(adc1 / adc3, 3.0, 0.1); // 3x fewer ADC converts per MAC
    EXPECT_NEAR(dac3 / dac1, 3.0, 0.1); // 3x more DAC converts per MAC
}

TEST(MacroB, AnalogAdderCutsAdcConverts)
{
    workload::Layer layer = matmulLayer("mvm", 8, 64, 16);
    layer.network = "mvm";
    auto adcConverts = [&](int operands) {
        MacroParams p = macroBDefaults();
        p.adderOperands = operands;
        Arch arch = macroB(p);
        engine::PerActionTable table = engine::precompute(arch, layer);
        mapping::Mapper mapper(arch.hierarchy, table.extLayer);
        mapping::NestResult nest = mapping::analyzeNest(
            arch.hierarchy, mapper.greedy(), table.extLayer);
        EXPECT_TRUE(nest.valid) << nest.invalidReason;
        int adc = arch.hierarchy.indexOf("adc");
        return nest.nodes[adc].tensors[2].actions;
    };
    // 4-operand adders merge the 4 weight-bit columns before the ADC.
    EXPECT_LT(adcConverts(4), adcConverts(1));
}

TEST(MacroC, AccumulatorMakesAdcConvertsInputBitInvariant)
{
    // Paper Fig. 3 Macro C: outputs accumulate across input-bit cycles, so
    // ADC converts do not scale with the number of input bits.
    auto adcConverts = [&](int input_bits) {
        MacroParams p = macroCDefaults();
        p.inputBits = input_bits;
        Arch arch = macroC(p);
        workload::Layer layer = matmulLayer("mvm", 4, 256, 64);
        layer.network = "mvm";
        engine::PerActionTable table = engine::precompute(arch, layer);
        mapping::Mapper mapper(arch.hierarchy, table.extLayer);
        mapping::NestResult nest = mapping::analyzeNest(
            arch.hierarchy, mapper.greedy(), table.extLayer);
        EXPECT_TRUE(nest.valid) << nest.invalidReason;
        int adc = arch.hierarchy.indexOf("adc");
        int dac = arch.hierarchy.indexOf("dac_bank");
        return std::pair{nest.nodes[adc].tensors[2].actions,
                         nest.nodes[dac].tensors[0].actions};
    };
    auto [adc2, dac2] = adcConverts(2);
    auto [adc8, dac8] = adcConverts(8);
    EXPECT_DOUBLE_EQ(adc2, adc8);          // accumulation across cycles
    EXPECT_NEAR(dac8 / dac2, 4.0, 1e-9);   // DAC still pays per bit
}

TEST(MacroD, SingleActivationPerEightBitMac)
{
    // 8b DAC + 8b C-2C MAC: IB = WB = 1, so unit ops equal MACs.
    Arch arch = macroD();
    workload::Layer layer = matmulLayer("mvm", 4, 64, 128);
    layer.network = "mvm";
    workload::Layer ext = arch.extendLayer(layer);
    EXPECT_EQ(ext.size(workload::Dim::IB), 1);
    EXPECT_EQ(ext.size(workload::Dim::WB), 1);
}

TEST(DigitalCim, HasNoConverters)
{
    Arch arch = digitalCim();
    EXPECT_EQ(arch.hierarchy.indexOf("adc"), -1);
    EXPECT_EQ(arch.hierarchy.indexOf("dac_bank"), -1);
    workload::Layer layer = matchedLayer(arch, 128, 64, 8);
    SearchResult sr = searchMappings(arch, layer, 40, 1);
    EXPECT_TRUE(sr.best.valid);
}

TEST(Validation, BadParamsRejected)
{
    MacroParams p = macroADefaults();
    p.outputReuseCols = 7; // does not divide 768... actually it does not
    EXPECT_THROW(macroA(p), PanicError);
    MacroParams b = macroBDefaults();
    b.adderOperands = 5;
    EXPECT_THROW(macroB(b), PanicError);
}

TEST(Calibration, MacroEfficienciesInPublishedBallpark)
{
    // Published: Macro B 351 TOPS/W (4b), Macro D 32.2 TOPS/W (8b),
    // Macro C 74 TMACS/W (~148 TOPS/W equivalent). We require order-of-
    // magnitude agreement: substitutes for silicon, not the silicon.
    struct Case
    {
        const char* name;
        double published_tops_w;
        std::int64_t rows, cols;
    };
    for (const Case& c : {Case{"B", 351.0, 64, 64},
                          Case{"D", 32.2, 64, 128}}) {
        Arch arch = macroByName(c.name);
        workload::Layer layer =
            matmulLayer("mvm", 2048, c.rows, c.cols);
        layer.network = "mvm";
        SearchResult sr = searchMappings(arch, layer, 60, 1);
        double tops_w = sr.best.topsPerWatt();
        EXPECT_GT(tops_w, c.published_tops_w / 10.0) << c.name;
        EXPECT_LT(tops_w, c.published_tops_w * 10.0) << c.name;
    }
}

} // namespace
} // namespace cimloop::macros
