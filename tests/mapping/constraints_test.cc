/** Per-node mapping constraints: temporal_dims (spec-attached search
 *  constraints, paper Sec. III-B2 "optional constraints ... for the
 *  mapping search"). */
#include "cimloop/mapping/mapper.hh"

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"
#include "cimloop/mapping/nest.hh"
#include "cimloop/spec/builder.hh"
#include "cimloop/spec/hierarchy.hh"
#include "cimloop/workload/layer.hh"

namespace cimloop::mapping {
namespace {

using spec::Hierarchy;
using spec::HierarchyBuilder;
using workload::dimIndex;
using workload::matmulLayer;

Hierarchy
constrainedHierarchy()
{
    // The inner buffer may only host the IB loop (a bit-serial sequencer
    // register); everything else must stay at dram.
    return HierarchyBuilder("constrained")
        .component("dram", "DRAM")
            .temporalReuse({TensorKind::Input, TensorKind::Weight,
                            TensorKind::Output})
        .component("seq", "SRAM")
            .temporalReuse({TensorKind::Output})
            .temporalDims({Dim::IB})
        .component("pe", "DigitalMac")
            .temporalReuse({TensorKind::Weight})
        .build();
}

TEST(TemporalDims, CheckRejectsForbiddenLoops)
{
    Hierarchy h = constrainedHierarchy();
    Layer layer = matmulLayer("mm", 4, 4, 4);
    Mapping m = Mapping::identity(h);
    m.levels[1].temporal[dimIndex(Dim::C)] = 4; // not in {IB}
    m.levels[0].temporal[dimIndex(Dim::P)] = 4;
    m.levels[0].temporal[dimIndex(Dim::K)] = 4;
    std::string problem = m.check(h, layer);
    EXPECT_NE(problem.find("temporal_dims"), std::string::npos)
        << problem;

    // Moving the loop to dram fixes it.
    m.levels[1].temporal[dimIndex(Dim::C)] = 1;
    m.levels[0].temporal[dimIndex(Dim::C)] = 4;
    EXPECT_TRUE(m.check(h, layer).empty()) << m.check(h, layer);
}

TEST(TemporalDims, AllowedLoopAccepted)
{
    Hierarchy h = constrainedHierarchy();
    Layer layer = matmulLayer("mm", 2, 2, 2);
    layer.dims[dimIndex(Dim::IB)] = 4;
    Mapping m = Mapping::identity(h);
    m.levels[1].temporal[dimIndex(Dim::IB)] = 4;
    m.levels[0].temporal[dimIndex(Dim::P)] = 2;
    m.levels[0].temporal[dimIndex(Dim::C)] = 2;
    m.levels[0].temporal[dimIndex(Dim::K)] = 2;
    EXPECT_TRUE(m.check(h, layer).empty()) << m.check(h, layer);
}

TEST(TemporalDims, GreedyAndRandomHonorConstraint)
{
    Hierarchy h = constrainedHierarchy();
    Layer layer = matmulLayer("mm", 6, 10, 14);
    layer.dims[dimIndex(Dim::IB)] = 8;
    Mapper mapper(h, layer, {.seed = 4});

    Mapping greedy = mapper.greedy();
    EXPECT_TRUE(greedy.check(h, layer).empty())
        << greedy.check(h, layer);
    for (Dim d : workload::kAllDims) {
        if (d != Dim::IB) {
            EXPECT_EQ(greedy.levels[1].temporal[dimIndex(d)], 1);
        }
    }

    for (int i = 0; i < 20; ++i) {
        auto m = mapper.next();
        ASSERT_TRUE(m.has_value());
        EXPECT_TRUE(m->check(h, layer).empty()) << m->toString(h);
    }
}

TEST(TemporalDims, ParsesFromYaml)
{
    Hierarchy h = Hierarchy::fromText(R"(
!Component
name: a
temporal_reuse: [Inputs, Weights, Outputs]
temporal_dims: [P, Q, IB]
)");
    ASSERT_EQ(h.node("a").temporalDims.size(), 3u);
    EXPECT_EQ(h.node("a").temporalDims[2], Dim::IB);
}

TEST(TemporalDims, UnmappableDimIsFatalInGreedy)
{
    // No storage node permits a C loop: greedy must fail loudly.
    Hierarchy h = HierarchyBuilder("broken")
        .component("dram", "DRAM")
            .temporalReuse({TensorKind::Input, TensorKind::Weight,
                            TensorKind::Output})
            .temporalDims({Dim::P})
        .component("pe", "DigitalMac")
            .temporalReuse({TensorKind::Weight})
            .temporalDims({Dim::P})
        .build();
    Layer layer = matmulLayer("mm", 2, 8, 1);
    EXPECT_THROW(Mapper(h, layer).greedy(), cimloop::FatalError);
}

} // namespace
} // namespace cimloop::mapping
