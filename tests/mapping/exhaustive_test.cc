/** Exhaustive mapspace enumeration and search-quality bounds. */
#include "cimloop/mapping/mapper.hh"

#include <set>

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"
#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/mapping/nest.hh"
#include "cimloop/spec/builder.hh"

namespace cimloop::mapping {
namespace {

using spec::Hierarchy;
using spec::HierarchyBuilder;
using workload::matmulLayer;

Hierarchy
tinyMacro()
{
    return HierarchyBuilder("tiny")
        .component("buffer", "SRAM")
            .temporalReuse({TensorKind::Input, TensorKind::Output})
        .component("dac", "DAC")
            .noCoalesce({TensorKind::Input})
        .container("col")
            .spatial(2, 1)
            .spatialReuse({TensorKind::Input})
            .spatialDims({Dim::K, Dim::WB})
        .component("adc", "ADC")
            .noCoalesce({TensorKind::Output})
        .component("cells", "ReRAMCell")
            .spatial(1, 2)
            .temporalReuse({TensorKind::Weight})
            .spatialReuse({TensorKind::Output})
            .spatialDims({Dim::C})
        .build();
}

TEST(Exhaustive, AllEnumeratedMappingsAreValidAndDistinct)
{
    Hierarchy h = tinyMacro();
    Layer layer = matmulLayer("mm", 2, 4, 2);
    Mapper mapper(h, layer);
    std::vector<Mapping> space = mapper.exhaustive();
    ASSERT_FALSE(space.empty());
    std::set<std::string> seen;
    for (const Mapping& m : space) {
        EXPECT_TRUE(m.check(h, layer).empty()) << m.toString(h);
        EXPECT_TRUE(seen.insert(m.toString(h)).second)
            << "duplicate: " << m.toString(h);
    }
    // The space must include both array-filling and serial mappings.
    bool saw_parallel = false, saw_serial = false;
    for (const Mapping& m : space) {
        NestResult r = analyzeNest(h, m, layer);
        if (!r.valid)
            continue;
        saw_parallel |= (r.innermostParallelism == 4);
        saw_serial |= (r.innermostParallelism == 1);
    }
    EXPECT_TRUE(saw_parallel);
    EXPECT_TRUE(saw_serial);
}

TEST(Exhaustive, GreedyAndRandomNeverBeatTheOptimum)
{
    // Evaluate the complete space with real energies and check that no
    // search strategy reports anything below the exhaustive optimum.
    macros::MacroParams p = macros::baseDefaults();
    p.rows = 4;
    p.cols = 4;
    p.inputBits = 2;
    p.weightBits = 2;
    engine::Arch arch = macros::baseMacro(p);
    workload::Layer layer = matmulLayer("mm", 2, 4, 2);
    layer.network = "mvm";

    engine::PerActionTable table = engine::precompute(arch, layer);
    Mapper mapper(arch.hierarchy, table.extLayer, {.seed = 3});

    double best = 1e300;
    int valid = 0;
    for (const Mapping& m : mapper.exhaustive(1000000)) {
        engine::Evaluation ev = engine::evaluate(arch, table, m);
        if (ev.valid) {
            ++valid;
            best = std::min(best, ev.energyPj);
        }
    }
    ASSERT_GT(valid, 10);

    engine::Evaluation greedy =
        engine::evaluate(arch, table, mapper.greedy());
    ASSERT_TRUE(greedy.valid);
    EXPECT_GE(greedy.energyPj, best * (1.0 - 1e-9));

    engine::SearchResult random =
        engine::searchMappings(arch, layer, 300, 11);
    EXPECT_GE(random.best.energyPj, best * (1.0 - 1e-9));
    // And with enough samples, random search should get close (2x).
    EXPECT_LE(random.best.energyPj, 2.0 * best);
}

TEST(Exhaustive, HonorsTemporalDims)
{
    Hierarchy h = HierarchyBuilder("constrained")
        .component("dram", "DRAM")
            .temporalReuse({TensorKind::Input, TensorKind::Weight,
                            TensorKind::Output})
        .component("reg", "SRAM")
            .temporalReuse({TensorKind::Output})
            .temporalDims({Dim::IB})
        .component("pe", "DigitalMac")
            .temporalReuse({TensorKind::Weight})
        .build();
    Layer layer = matmulLayer("mm", 2, 2, 2);
    layer.dims[workload::dimIndex(Dim::IB)] = 2;
    for (const Mapping& m : Mapper(h, layer).exhaustive()) {
        for (Dim d : workload::kAllDims) {
            if (d != Dim::IB) {
                EXPECT_EQ(m.levels[1].temporal[workload::dimIndex(d)], 1)
                    << m.toString(h);
            }
        }
    }
}

TEST(Exhaustive, LimitGuardsAgainstBlowup)
{
    Hierarchy h = tinyMacro();
    Layer layer = matmulLayer("mm", 64, 64, 64);
    Mapper mapper(h, layer);
    EXPECT_THROW(mapper.exhaustive(50), cimloop::FatalError);
}

} // namespace
} // namespace cimloop::mapping
