#include "cimloop/mapping/mapper.hh"

#include <gtest/gtest.h>

#include "cimloop/mapping/nest.hh"
#include "cimloop/spec/builder.hh"
#include "cimloop/workload/networks.hh"

namespace cimloop::mapping {
namespace {

using spec::Hierarchy;
using spec::HierarchyBuilder;
using workload::dimIndex;
using workload::matmulLayer;

Hierarchy
testMacro(std::int64_t cols = 8, std::int64_t rows = 8)
{
    return HierarchyBuilder("macro")
        .component("buffer")
            .temporalReuse({TensorKind::Input, TensorKind::Output})
        .component("DAC")
            .noCoalesce({TensorKind::Input})
        .container("column")
            .spatial(cols, 1)
            .spatialReuse({TensorKind::Input})
        .component("ADC")
            .noCoalesce({TensorKind::Output})
        .component("cell")
            .spatial(1, rows)
            .temporalReuse({TensorKind::Weight})
            .spatialReuse({TensorKind::Output})
        .build();
}

TEST(Greedy, FillsMatchedArrayCompletely)
{
    Hierarchy h = testMacro(8, 8);
    Layer layer = matmulLayer("mvm", 16, 8, 8);
    Mapping m = Mapper(h, layer).greedy();
    NestResult r = analyzeNest(h, m, layer);
    ASSERT_TRUE(r.valid) << r.invalidReason;
    EXPECT_EQ(r.innermostParallelism, 64);
    EXPECT_DOUBLE_EQ(r.nodes[4].utilization, 1.0);
}

TEST(Greedy, RespectsWireSharing)
{
    // K cannot go across rows (output wire), C cannot go across columns
    // (input wire); greedy must still produce a valid mapping.
    Hierarchy h = testMacro(4, 4);
    Layer layer = matmulLayer("mvm", 2, 16, 16);
    Mapping m = Mapper(h, layer).greedy();
    EXPECT_TRUE(m.check(h, layer).empty()) << m.check(h, layer);
    // Columns may only carry K (and other output-relevant dims).
    EXPECT_EQ(m.levels[2].spatial[dimIndex(Dim::C)], 1);
    // Cells may only carry reduction dims.
    EXPECT_EQ(m.levels[4].spatial[dimIndex(Dim::K)], 1);
}

TEST(Greedy, HonorsSpatialDimsConstraint)
{
    Hierarchy h = HierarchyBuilder("constrained")
        .component("buffer")
            .temporalReuse({TensorKind::Input, TensorKind::Output})
        .container("col")
            .spatial(4, 1)
            .spatialDims({Dim::WB})
        .component("cell")
            .spatial(1, 4)
            .temporalReuse({TensorKind::Weight})
            .spatialReuse({TensorKind::Output})
        .build();
    Layer layer = matmulLayer("mvm", 4, 4, 4);
    layer.dims[dimIndex(Dim::WB)] = 4;
    Mapping m = Mapper(h, layer).greedy();
    ASSERT_TRUE(m.check(h, layer).empty()) << m.check(h, layer);
    EXPECT_EQ(m.levels[1].spatial[dimIndex(Dim::WB)], 4);
    EXPECT_EQ(m.levels[1].spatial[dimIndex(Dim::K)], 1);
}

TEST(Random, GeneratesManyValidMappings)
{
    Hierarchy h = testMacro(8, 8);
    Layer layer = matmulLayer("mvm", 12, 24, 10);
    Mapper mapper(h, layer, {.seed = 7, .maxAttempts = 64});
    int distinct_parallelism = 0;
    std::set<std::int64_t> parallelisms;
    for (int i = 0; i < 50; ++i) {
        auto m = mapper.next();
        ASSERT_TRUE(m.has_value()) << "sample " << i;
        NestResult r = analyzeNest(h, *m, layer);
        ASSERT_TRUE(r.valid) << r.invalidReason;
        parallelisms.insert(r.innermostParallelism);
    }
    distinct_parallelism = static_cast<int>(parallelisms.size());
    // The random mapper must actually explore the space.
    EXPECT_GE(distinct_parallelism, 2);
}

TEST(Random, DeterministicForSeed)
{
    Hierarchy h = testMacro(4, 4);
    Layer layer = matmulLayer("mvm", 8, 8, 8);
    Mapper a(h, layer, {.seed = 99});
    Mapper b(h, layer, {.seed = 99});
    for (int i = 0; i < 10; ++i) {
        auto ma = a.next();
        auto mb = b.next();
        ASSERT_TRUE(ma && mb);
        EXPECT_EQ(ma->toString(h), mb->toString(h)) << "sample " << i;
    }
}

TEST(Random, DifferentSeedsDiffer)
{
    Hierarchy h = testMacro(4, 4);
    Layer layer = matmulLayer("mvm", 8, 8, 8);
    Mapper a(h, layer, {.seed = 1});
    Mapper b(h, layer, {.seed = 2});
    int differing = 0;
    for (int i = 0; i < 10; ++i) {
        auto ma = a.next();
        auto mb = b.next();
        ASSERT_TRUE(ma && mb);
        if (ma->toString(h) != mb->toString(h))
            ++differing;
    }
    EXPECT_GT(differing, 0);
}

TEST(Random, WorksOnRealLayers)
{
    Hierarchy h = testMacro(16, 16);
    workload::Network net = workload::resnet18();
    for (const workload::Layer& layer :
         {net.layers[0], net.layers[5], net.layers[20]}) {
        Mapper mapper(h, layer, {.seed = 3});
        auto m = mapper.next();
        ASSERT_TRUE(m.has_value()) << layer.name;
        NestResult r = analyzeNest(h, *m, layer);
        EXPECT_TRUE(r.valid) << layer.name << ": " << r.invalidReason;
    }
}

TEST(Identity, TrivialLayerMapsTrivially)
{
    Hierarchy h = testMacro(2, 2);
    Layer layer = matmulLayer("one", 1, 1, 1);
    Mapping m = Mapping::identity(h);
    EXPECT_TRUE(m.check(h, layer).empty());
    NestResult r = analyzeNest(h, m, layer);
    ASSERT_TRUE(r.valid);
    EXPECT_DOUBLE_EQ(r.totalOps, 1.0);
    EXPECT_EQ(r.innermostParallelism, 1);
}

class GreedySweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{};

TEST_P(GreedySweep, AlwaysValid)
{
    auto [m_dim, c_dim, k_dim] = GetParam();
    Hierarchy h = testMacro(8, 8);
    Layer layer = matmulLayer("mvm", m_dim, c_dim, k_dim);
    Mapping m = Mapper(h, layer).greedy();
    NestResult r = analyzeNest(h, m, layer);
    EXPECT_TRUE(r.valid) << r.invalidReason;
    // Everything must be computed exactly once.
    EXPECT_DOUBLE_EQ(r.totalOps,
                     static_cast<double>(layer.macs()));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GreedySweep,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{1, 64, 64},
                      std::tuple{7, 3, 1000}, std::tuple{128, 8, 8},
                      std::tuple{13, 17, 19}, std::tuple{1024, 768, 768}));

} // namespace
} // namespace cimloop::mapping
