/** Fixed-mapping YAML round-trip (Timeloop-style pinned mappings). */
#include "cimloop/mapping/mapping.hh"

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"
#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/mapping/mapper.hh"
#include "cimloop/workload/networks.hh"

namespace cimloop::mapping {
namespace {

TEST(MappingYaml, RoundTripPreservesEvaluation)
{
    engine::Arch arch = macros::baseMacro();
    workload::Layer layer = workload::resnet18().layers[6];
    engine::PerActionTable table = engine::precompute(arch, layer);
    Mapper mapper(arch.hierarchy, table.extLayer, {.seed = 5});

    for (int i = 0; i < 10; ++i) {
        auto m = mapper.next();
        ASSERT_TRUE(m.has_value());
        std::string text = m->toYamlText(arch.hierarchy);
        Mapping replay = Mapping::fromText(arch.hierarchy, text);
        EXPECT_TRUE(replay.check(arch.hierarchy, table.extLayer).empty())
            << text;
        engine::Evaluation a = engine::evaluate(arch, table, *m);
        engine::Evaluation b = engine::evaluate(arch, table, replay);
        // Capacity-rejected samples must round-trip to the same verdict.
        EXPECT_EQ(a.valid, b.valid) << text;
        if (!a.valid)
            continue;
        EXPECT_DOUBLE_EQ(a.energyPj, b.energyPj) << text;
        EXPECT_DOUBLE_EQ(a.latencyNs, b.latencyNs) << text;
    }
}

TEST(MappingYaml, HandWrittenMapping)
{
    engine::Arch arch = macros::baseMacro();
    spec::Hierarchy& h = arch.hierarchy;
    Mapping m = Mapping::fromText(h, R"(
mapping:
  - node: cells
    spatial: {C: 128}
  - node: column
    spatial: {K: 16, WB: 8}
  - node: buffer
    temporal: {P: 32, IB: 8}
    order: [P, IB]
)");
    workload::Layer layer = workload::matmulLayer("mvm", 32, 128, 16);
    layer.network = "mvm";
    engine::Arch a2 = arch;
    workload::Layer ext = a2.extendLayer(layer);
    EXPECT_TRUE(m.check(h, ext).empty()) << m.check(h, ext);
    EXPECT_EQ(m.levels[h.indexOf("buffer")].order.size(), 2u);
}

TEST(MappingYaml, Errors)
{
    engine::Arch arch = macros::baseMacro();
    const spec::Hierarchy& h = arch.hierarchy;
    EXPECT_THROW(Mapping::fromText(h, "mapping:\n  - temporal: {C: 2}\n"),
                 cimloop::FatalError); // no node
    EXPECT_THROW(
        Mapping::fromText(h, "mapping:\n  - node: ghost\n"),
        cimloop::FatalError);
    EXPECT_THROW(
        Mapping::fromText(h,
                          "mapping:\n  - node: buffer\n    temporal: "
                          "{Z: 2}\n"),
        cimloop::FatalError); // unknown dim
    EXPECT_THROW(
        Mapping::fromText(h,
                          "mapping:\n  - node: buffer\n    stride: 2\n"),
        cimloop::FatalError); // unknown key
    EXPECT_THROW(
        Mapping::fromText(h,
                          "mapping:\n  - node: buffer\n    temporal: "
                          "{C: 0}\n"),
        cimloop::FatalError);
}

TEST(MappingYaml, OmitsIdentityNodes)
{
    engine::Arch arch = macros::baseMacro();
    Mapping m = Mapping::identity(arch.hierarchy);
    std::string text = m.toYamlText(arch.hierarchy);
    EXPECT_EQ(text, "mapping:\n"); // nothing to say
}

} // namespace
} // namespace cimloop::mapping
