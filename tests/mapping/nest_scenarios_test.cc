/**
 * Deeper nest-analysis scenarios: multi-level storage chains, input
 * halos, flexible (NoC) interconnect, Macro-D-style weight banks, and
 * conservation properties under random mappings.
 */
#include "cimloop/mapping/nest.hh"

#include <gtest/gtest.h>

#include "cimloop/mapping/mapper.hh"
#include "cimloop/spec/builder.hh"
#include "cimloop/workload/networks.hh"

namespace cimloop::mapping {
namespace {

using spec::Hierarchy;
using spec::HierarchyBuilder;
using spec::tensorIndex;
using workload::convLayer;
using workload::dimIndex;
using workload::matmulLayer;

constexpr int kI = tensorIndex(TensorKind::Input);
constexpr int kW = tensorIndex(TensorKind::Weight);
constexpr int kO = tensorIndex(TensorKind::Output);

TEST(StorageChain, ThreeLevelInputHierarchy)
{
    // DRAM -> global buffer -> local buffer -> compute: each level's
    // reads serve the inner level's fills exactly.
    Hierarchy h = HierarchyBuilder("chain")
        .component("dram", "DRAM")
            .temporalReuse({TensorKind::Input, TensorKind::Weight,
                            TensorKind::Output})
        .component("gbuf", "SRAM")
            .temporalReuse({TensorKind::Input})
        .component("lbuf", "SRAM")
            .temporalReuse({TensorKind::Input})
        .component("pe", "DigitalMac")
            .temporalReuse({TensorKind::Weight})
        .build();

    Layer layer = matmulLayer("mm", 8, 16, 4);
    Mapping m = Mapping::identity(h);
    m.levels[3].temporal[dimIndex(Dim::C)] = 16; // inside lbuf's tile
    m.levels[2].temporal[dimIndex(Dim::K)] = 4;
    m.levels[1].temporal[dimIndex(Dim::P)] = 8;

    NestResult r = analyzeNest(h, m, layer);
    ASSERT_TRUE(r.valid) << r.invalidReason;
    // lbuf holds a 16-input tile (C inside it).
    EXPECT_EQ(r.nodes[2].tensors[kI].tile, 16);
    // Compute uses each input once per unit op: 8*16*4 = 512 reads.
    EXPECT_DOUBLE_EQ(r.nodes[2].tensors[kI].reads, 512.0);
    // lbuf's own K loop is input-irrelevant with no relevant loop inside
    // it, so the tile stays resident across K: fills = 16 x 8 P-tiles.
    EXPECT_DOUBLE_EQ(r.nodes[2].tensors[kI].fills, 128.0);
    // gbuf serves lbuf's fills; dram serves gbuf's fills.
    EXPECT_DOUBLE_EQ(r.nodes[1].tensors[kI].reads,
                     r.nodes[2].tensors[kI].fills);
    EXPECT_DOUBLE_EQ(r.nodes[0].tensors[kI].reads,
                     r.nodes[1].tensors[kI].fills);
    // The backing store is filled exactly once per element.
    EXPECT_DOUBLE_EQ(r.nodes[0].tensors[kI].fills, 8.0 * 16.0);
}

TEST(Halo, ConvInputTilesOverlap)
{
    Hierarchy h = HierarchyBuilder("conv")
        .component("dram", "DRAM")
            .temporalReuse({TensorKind::Input, TensorKind::Weight,
                            TensorKind::Output})
        .component("buf", "SRAM")
            .temporalReuse({TensorKind::Input})
        .component("pe", "DigitalMac")
            .temporalReuse({TensorKind::Weight})
        .build();

    // 3x3 conv over an 8x8 output; the buffer tile holds one output
    // row's worth of inputs: extents P=1,Q=8,R=3,S=3 -> halo 3 x 10.
    Layer layer = convLayer("c", 1, 1, 1, 8, 8, 3, 3);
    Mapping m = Mapping::identity(h);
    m.levels[2].temporal[dimIndex(Dim::Q)] = 8;
    m.levels[2].temporal[dimIndex(Dim::R)] = 3;
    m.levels[2].temporal[dimIndex(Dim::S)] = 3;
    m.levels[1].temporal[dimIndex(Dim::P)] = 8;

    NestResult r = analyzeNest(h, m, layer);
    ASSERT_TRUE(r.valid) << r.invalidReason;
    EXPECT_EQ(r.nodes[1].tensors[kI].tile, 3 * 10);
    // 8 P-iterations fetch a fresh 30-element halo tile each: the halo
    // overlap between consecutive tiles is refetched (documented
    // approximation, matching Timeloop's uber model).
    EXPECT_DOUBLE_EQ(r.nodes[1].tensors[kI].fills, 8.0 * 30.0);
}

TEST(FlexibleSpatial, NocMulticastsWithoutRestrictingDims)
{
    Hierarchy h = HierarchyBuilder("noc")
        .component("gbuf", "SRAM")
            .temporalReuse({TensorKind::Input, TensorKind::Weight,
                            TensorKind::Output})
        .container("array")
            .spatial(4, 1)
            .flexibleSpatial()
        .component("pe", "DigitalMac")
            .temporalReuse({TensorKind::Weight})
        .build();

    Layer layer = matmulLayer("mm", 4, 8, 4);
    Mapping m = Mapping::identity(h);
    // K across the macros: inputs are identical across them -> the NoC
    // multicasts (flexible), saving gbuf reads.
    m.levels[1].spatial[dimIndex(Dim::K)] = 4;
    m.levels[0].temporal[dimIndex(Dim::C)] = 8;
    m.levels[0].temporal[dimIndex(Dim::P)] = 4;

    NestResult r = analyzeNest(h, m, layer);
    ASSERT_TRUE(r.valid) << r.invalidReason;
    // 4*8*4 = 128 ops; inputs multicast across K: 128/4 = 32 reads.
    EXPECT_DOUBLE_EQ(r.nodes[0].tensors[kI].reads, 32.0);

    // Spatializing a tensor-relevant dim (P for inputs) is ALSO allowed
    // under flexibleSpatial (unicast), unlike a hard shared wire.
    Mapping m2 = Mapping::identity(h);
    m2.levels[1].spatial[dimIndex(Dim::P)] = 4;
    m2.levels[0].temporal[dimIndex(Dim::C)] = 8;
    m2.levels[0].temporal[dimIndex(Dim::K)] = 4;
    EXPECT_TRUE(m2.check(h, layer).empty()) << m2.check(h, layer);
}

TEST(WeightBank, ServesCellReloads)
{
    // Macro-D-like: a weight bank between the backing store and the MAC
    // units; small active array forces weight tile swaps that the bank
    // absorbs.
    Hierarchy h = HierarchyBuilder("bank")
        .component("dram", "DRAM")
            .temporalReuse({TensorKind::Input, TensorKind::Weight,
                            TensorKind::Output})
        .component("bank", "SRAM")
            .temporalReuse({TensorKind::Weight})
        .component("macs", "CapacitorMac")
            .spatial(1, 4)
            .temporalReuse({TensorKind::Weight})
            .spatialReuse({TensorKind::Output})
            .spatialDims({Dim::C})
        .build();

    // C = 16 over 4 active rows: 4 weight tiles cycle through the array.
    // The C loop sits at the MAC level so the bank's tile covers all 16
    // weights (a level's own loops are outside its storage).
    Layer layer = matmulLayer("mm", 8, 16, 1);
    Mapping m = Mapping::identity(h);
    m.levels[2].spatial[dimIndex(Dim::C)] = 4;
    m.levels[2].temporal[dimIndex(Dim::C)] = 4;
    m.levels[2].order = {Dim::C};
    m.levels[0].temporal[dimIndex(Dim::P)] = 8;
    m.levels[0].order = {Dim::P};

    NestResult r = analyzeNest(h, m, layer);
    ASSERT_TRUE(r.valid) << r.invalidReason;
    // The P loop at dram sits above the C loop at the bank, so the MAC
    // array reloads all 16 weights every P iteration: 128 cell fills...
    EXPECT_DOUBLE_EQ(r.nodes[2].tensors[kW].fills, 8.0 * 16.0);
    // ...all served by the bank, which itself loads each weight once.
    EXPECT_DOUBLE_EQ(r.nodes[1].tensors[kW].reads, 8.0 * 16.0);
    EXPECT_DOUBLE_EQ(r.nodes[1].tensors[kW].fills, 16.0);
    EXPECT_DOUBLE_EQ(r.nodes[0].tensors[kW].reads, 16.0);
}

TEST(Conservation, CellReadsEqualOpsForRandomMappings)
{
    // Property: whatever the mapping, every unit op reads its weight
    // exactly once from the innermost weight store.
    Hierarchy h = HierarchyBuilder("prop")
        .component("buffer", "SRAM")
            .temporalReuse({TensorKind::Input, TensorKind::Output})
        .component("dac", "DAC")
            .noCoalesce({TensorKind::Input})
        .container("col")
            .spatial(8, 1)
            .spatialReuse({TensorKind::Input})
            .spatialDims({Dim::K, Dim::WB})
        .component("adc", "ADC")
            .noCoalesce({TensorKind::Output})
        .component("cells", "ReRAMCell")
            .spatial(1, 8)
            .temporalReuse({TensorKind::Weight})
            .spatialReuse({TensorKind::Output})
            .spatialDims({Dim::C, Dim::R, Dim::S})
        .build();

    Layer layer = matmulLayer("mm", 6, 12, 10);
    layer.dims[dimIndex(Dim::IB)] = 2;
    layer.dims[dimIndex(Dim::WB)] = 2;
    Mapper mapper(h, layer, {.seed = 17});
    int cells = h.indexOf("cells");
    for (int i = 0; i < 30; ++i) {
        auto m = mapper.next();
        ASSERT_TRUE(m.has_value());
        NestResult r = analyzeNest(h, *m, layer);
        if (!r.valid)
            continue; // capacity-rejected samples are fine
        EXPECT_DOUBLE_EQ(r.nodes[cells].tensors[kW].reads, r.totalOps)
            << m->toString(h);
        // ADC converts never exceed ops and never fall below
        // ops / (rows * adder width) = the full-reduction bound.
        double adc = r.nodes[h.indexOf("adc")].tensors[kO].actions;
        EXPECT_LE(adc, r.totalOps + 1e-9);
        EXPECT_GE(adc, r.totalOps / 8.0 - 1e-9);
    }
}

TEST(Conservation, BackingFillsEqualFootprintWhenStationary)
{
    // With the greedy weight-stationary order, every tensor enters its
    // backing store exactly once, for any layer.
    Hierarchy h = HierarchyBuilder("once")
        .component("dram", "DRAM")
            .temporalReuse({TensorKind::Input, TensorKind::Weight,
                            TensorKind::Output})
        .component("pe", "DigitalMac")
            .spatial(4, 4)
            .temporalReuse({TensorKind::Weight})
            .spatialDims({Dim::C, Dim::K})
        .build();
    // C and K fit the 4x4 mesh entirely, so the only temporal loops are
    // N/P/Q/IB — relevant to inputs and (except IB, which lands
    // innermost) to outputs: no refetch anywhere.
    for (const workload::Layer& base :
         {matmulLayer("a", 3, 4, 4), matmulLayer("b", 16, 2, 4)}) {
        Mapping m = Mapper(h, base).greedy();
        NestResult r = analyzeNest(h, m, base);
        ASSERT_TRUE(r.valid) << r.invalidReason;
        EXPECT_DOUBLE_EQ(
            r.nodes[0].tensors[kI].fills,
            static_cast<double>(base.tensorSize(TensorKind::Input)))
            << base.name;
        EXPECT_DOUBLE_EQ(
            r.nodes[0].tensors[kO].fills,
            static_cast<double>(base.tensorSize(TensorKind::Output)))
            << base.name;
    }
}

TEST(Outputs, ReductionLoopOutsideStorageCausesRewrite)
{
    // If a reduction dim iterates above the output store's tile, partial
    // outputs are written back multiple times.
    Hierarchy h = HierarchyBuilder("psum")
        .component("dram", "DRAM")
            .temporalReuse({TensorKind::Input, TensorKind::Weight,
                            TensorKind::Output})
        .component("obuf", "SRAM")
            .temporalReuse({TensorKind::Output})
        .component("pe", "DigitalMac")
            .temporalReuse({TensorKind::Weight})
        .build();

    Layer layer = matmulLayer("mm", 4, 8, 1);
    Mapping m = Mapping::identity(h);
    // K=1; P tiled inside obuf; C split so part iterates above obuf.
    m.levels[2].temporal[dimIndex(Dim::C)] = 2;
    m.levels[1].temporal[dimIndex(Dim::P)] = 4;
    m.levels[1].order = {Dim::P};
    m.levels[0].temporal[dimIndex(Dim::C)] = 4;
    m.levels[0].order = {Dim::C};

    NestResult r = analyzeNest(h, m, layer);
    ASSERT_TRUE(r.valid) << r.invalidReason;
    // The outer C loop re-runs obuf's P sweep, so each of the 4 outputs
    // is written back 4 times (and re-read for further accumulation).
    EXPECT_DOUBLE_EQ(r.nodes[1].tensors[kO].fills, 16.0);
    EXPECT_DOUBLE_EQ(r.nodes[0].tensors[kO].reads, 16.0);
}

} // namespace
} // namespace cimloop::mapping
