#include "cimloop/mapping/nest.hh"

#include <gtest/gtest.h>

#include "cimloop/spec/builder.hh"
#include "cimloop/workload/layer.hh"

namespace cimloop::mapping {
namespace {

using spec::Hierarchy;
using spec::HierarchyBuilder;
using spec::tensorIndex;
using workload::dimIndex;
using workload::matmulLayer;

constexpr int kI = tensorIndex(TensorKind::Input);
constexpr int kW = tensorIndex(TensorKind::Weight);
constexpr int kO = tensorIndex(TensorKind::Output);

/** The Fig. 5a/5b macro: buffer / adder / DAC / 2 columns x 2 cells. */
Hierarchy
fig5Macro()
{
    return HierarchyBuilder("fig5")
        .component("buffer")
            .temporalReuse({TensorKind::Input, TensorKind::Output})
        .container("macro")
        .component("adder")
            .coalesce({TensorKind::Output})
        .component("DAC_bank")
            .noCoalesce({TensorKind::Input})
        .container("column")
            .spatial(2, 1)
            .spatialReuse({TensorKind::Input})
        .component("ADC")
            .noCoalesce({TensorKind::Output})
        .component("memory_cell")
            .spatial(1, 2)
            .temporalReuse({TensorKind::Weight})
            .spatialReuse({TensorKind::Output})
        .build();
}

// 4 input vectors of length 2, weight matrix 2x2: fills the array exactly.
// Mapping: C across cells (rows), K across columns, P temporal at buffer.
struct Fig5Fixture
{
    Hierarchy h = fig5Macro();
    Layer layer = matmulLayer("mvm", 4, 2, 2);
    Mapping m = Mapping::identity(h);

    Fig5Fixture()
    {
        m.levels[6].spatial[dimIndex(Dim::C)] = 2; // rows
        m.levels[4].spatial[dimIndex(Dim::K)] = 2; // columns
        m.levels[0].temporal[dimIndex(Dim::P)] = 4;
    }
};

TEST(Fig5, HandComputedCounts)
{
    Fig5Fixture f;
    NestResult r = analyzeNest(f.h, f.m, f.layer);
    ASSERT_TRUE(r.valid) << r.invalidReason;

    EXPECT_DOUBLE_EQ(r.totalOps, 16.0); // 2*2*4 MACs
    EXPECT_EQ(r.steps, 4);
    EXPECT_EQ(r.innermostParallelism, 4); // 2x2 cells all used

    // Weights: each of the 16 MACs reads a cell; 4 cells programmed once.
    EXPECT_DOUBLE_EQ(r.nodes[6].tensors[kW].reads, 16.0);
    EXPECT_DOUBLE_EQ(r.nodes[6].tensors[kW].fills, 4.0);
    EXPECT_EQ(r.nodes[6].tensors[kW].tile, 1);

    // Inputs: 2 per vector x 4 vectors cross the DAC (multicast across
    // the 2 columns saves half the converts).
    EXPECT_DOUBLE_EQ(r.nodes[3].tensors[kI].actions, 8.0);
    // The buffer serves those 8 reads and is filled once per element.
    EXPECT_DOUBLE_EQ(r.nodes[0].tensors[kI].reads, 8.0);
    EXPECT_DOUBLE_EQ(r.nodes[0].tensors[kI].fills, 8.0);
    EXPECT_EQ(r.nodes[0].tensors[kI].tile, 2);

    // Outputs: rows sum on the column wire (16 -> 8); the ADC converts 8
    // values (2 columns x 4 vectors); the adder passes 8 through; the
    // buffer receives 8 updates and writes 8 finished outputs upward.
    EXPECT_DOUBLE_EQ(r.nodes[5].tensors[kO].actions, 8.0);
    EXPECT_DOUBLE_EQ(r.nodes[2].tensors[kO].actions, 8.0);
    EXPECT_DOUBLE_EQ(r.nodes[0].tensors[kO].reads, 8.0);
    EXPECT_DOUBLE_EQ(r.nodes[0].tensors[kO].fills, 8.0);

    // Instances.
    EXPECT_EQ(r.nodes[4].usedInstances, 2);
    EXPECT_EQ(r.nodes[5].usedInstances, 2);
    EXPECT_EQ(r.nodes[6].usedInstances, 4);
    EXPECT_EQ(r.nodes[6].totalInstances, 4);
    EXPECT_DOUBLE_EQ(r.nodes[6].utilization, 1.0);
}

TEST(Fig5, UnderutilizedArray)
{
    // Only one output channel: one column used, half the array idle.
    Fig5Fixture f;
    f.layer = matmulLayer("mvm", 4, 2, 1);
    f.m = Mapping::identity(f.h);
    f.m.levels[6].spatial[dimIndex(Dim::C)] = 2;
    f.m.levels[0].temporal[dimIndex(Dim::P)] = 4;

    NestResult r = analyzeNest(f.h, f.m, f.layer);
    ASSERT_TRUE(r.valid) << r.invalidReason;
    EXPECT_EQ(r.nodes[6].usedInstances, 2);
    EXPECT_EQ(r.nodes[6].totalInstances, 4);
    EXPECT_DOUBLE_EQ(r.nodes[6].utilization, 0.5);
    // Inputs still multicast to the single used column: DAC converts =
    // 2 x 4 (no sharing benefit to lose with one column).
    EXPECT_DOUBLE_EQ(r.nodes[3].tensors[kI].actions, 8.0);
    // ADC converts only 4 values (1 column x 4 vectors).
    EXPECT_DOUBLE_EQ(r.nodes[5].tensors[kO].actions, 4.0);
}

TEST(Fig5, WireSharingRejectsBadSpatialMapping)
{
    // C is relevant to Inputs, so mapping C across the input-multicast
    // columns must be rejected (distinct data on a shared wire).
    Fig5Fixture f;
    f.layer = matmulLayer("mvm", 4, 4, 1);
    f.m = Mapping::identity(f.h);
    f.m.levels[6].spatial[dimIndex(Dim::C)] = 2;
    f.m.levels[4].spatial[dimIndex(Dim::C)] = 2; // illegal
    f.m.levels[0].temporal[dimIndex(Dim::P)] = 4;

    NestResult r = analyzeNest(f.h, f.m, f.layer);
    EXPECT_FALSE(r.valid);
    EXPECT_NE(r.invalidReason.find("shared wire"), std::string::npos);
}

TEST(Fig5, FactorMismatchRejected)
{
    Fig5Fixture f;
    f.m.levels[0].temporal[dimIndex(Dim::P)] = 2; // product now wrong
    NestResult r = analyzeNest(f.h, f.m, f.layer);
    EXPECT_FALSE(r.valid);
}

/** Coalescing: partial sums from un-reused columns merge at the adder. */
TEST(Coalesce, AdderMergesSpatialPartials)
{
    Hierarchy h = HierarchyBuilder("coalesce")
        .component("buffer")
            .temporalReuse({TensorKind::Input, TensorKind::Output})
        .component("adder")
            .coalesce({TensorKind::Output})
        .container("col")
            .spatial(2, 1)
        .component("cell")
            .spatial(1, 2)
            .temporalReuse({TensorKind::Weight})
            .spatialReuse({TensorKind::Output})
        .build();

    // C = 4 split 2 (cells) x 2 (columns); K = 1; 2 vectors.
    Layer layer = matmulLayer("mvm", 2, 4, 1);
    Mapping m = Mapping::identity(h);
    m.levels[3].spatial[dimIndex(Dim::C)] = 2;
    m.levels[2].spatial[dimIndex(Dim::C)] = 2;
    m.levels[0].temporal[dimIndex(Dim::P)] = 2;

    NestResult r = analyzeNest(h, m, layer);
    ASSERT_TRUE(r.valid) << r.invalidReason;
    // 8 MACs; wired row sum halves to 4 partials (2 per vector); the
    // adder sees all 4 and merges each vector's 2 column-partials into 1.
    EXPECT_DOUBLE_EQ(r.nodes[1].tensors[kO].actions, 4.0);
    EXPECT_DOUBLE_EQ(r.nodes[0].tensors[kO].reads, 2.0);
}

/** Permutation-aware temporal reuse: weight-stationary vs. not. */
TEST(Evictions, LoopOrderChangesWeightRefetch)
{
    Hierarchy h = HierarchyBuilder("evict")
        .component("dram")
            .temporalReuse({TensorKind::Input, TensorKind::Weight,
                            TensorKind::Output})
        .component("wbuf")
            .temporalReuse({TensorKind::Weight})
        .component("pe")
            .temporalReuse({TensorKind::Weight})
        .build();

    Layer layer = matmulLayer("mm", 4, 4, 1); // P=4, C=4
    Mapping m = Mapping::identity(h);
    // Both loops at the pe, so the wbuf above holds the full 4-weight
    // tile while the pe holds one weight at a time.
    m.levels[2].temporal[dimIndex(Dim::C)] = 4;
    m.levels[2].temporal[dimIndex(Dim::P)] = 4;

    // Weight-stationary order: C outer, P inner. The P loop (irrelevant
    // to weights) is innermost, so each weight is fetched into pe once.
    m.levels[2].order = {Dim::C, Dim::P};
    NestResult ws = analyzeNest(h, m, layer);
    ASSERT_TRUE(ws.valid) << ws.invalidReason;
    EXPECT_DOUBLE_EQ(ws.nodes[2].tensors[kW].fills, 4.0);
    EXPECT_DOUBLE_EQ(ws.nodes[1].tensors[kW].reads, 4.0);

    // Output-stationary order: P outer, C inner. Every P iteration
    // re-sweeps all 4 weights: 16 fetches into the pe.
    m.levels[2].order = {Dim::P, Dim::C};
    NestResult os = analyzeNest(h, m, layer);
    ASSERT_TRUE(os.valid) << os.invalidReason;
    EXPECT_DOUBLE_EQ(os.nodes[2].tensors[kW].fills, 16.0);
    EXPECT_DOUBLE_EQ(os.nodes[1].tensors[kW].reads, 16.0);

    // The wbuf holds the whole weight tile either way, so its own fills
    // from dram are order-invariant: one pass over the 4 weights.
    EXPECT_EQ(ws.nodes[1].tensors[kW].tile, 4);
    EXPECT_DOUBLE_EQ(ws.nodes[1].tensors[kW].fills,
                     os.nodes[1].tensors[kW].fills);
    EXPECT_DOUBLE_EQ(ws.nodes[1].tensors[kW].fills, 4.0);
}

TEST(Evictions, IrrelevantLoopAtOuterNodeEvicts)
{
    // The P loop lives at dram, above the wbuf's C loop: refetch.
    Hierarchy h = HierarchyBuilder("evict2")
        .component("dram")
            .temporalReuse({TensorKind::Input, TensorKind::Weight,
                            TensorKind::Output})
        .component("wbuf")
            .temporalReuse({TensorKind::Weight})
        .build();
    Layer layer = matmulLayer("mm", 4, 4, 1);
    Mapping m = Mapping::identity(h);
    m.levels[0].temporal[dimIndex(Dim::P)] = 4;
    m.levels[1].temporal[dimIndex(Dim::C)] = 4;

    NestResult r = analyzeNest(h, m, layer);
    ASSERT_TRUE(r.valid) << r.invalidReason;
    // wbuf tile = 1 weight; C relevant (x4); P at dram has the relevant C
    // loop inside it, so it multiplies too (x4): 16 fills.
    EXPECT_DOUBLE_EQ(r.nodes[1].tensors[kW].fills, 16.0);
}

TEST(Capacity, EntriesAttributeBoundsTiles)
{
    Hierarchy h = HierarchyBuilder("cap")
        .component("dram")
            .temporalReuse({TensorKind::Input, TensorKind::Weight,
                            TensorKind::Output})
        .component("buf")
            .temporalReuse({TensorKind::Input})
            .attr("entries", std::int64_t{8})
        .component("pe")
            .temporalReuse({TensorKind::Weight})
        .build();
    Layer layer = matmulLayer("mm", 2, 16, 1);
    Mapping m = Mapping::identity(h);
    // All of C inside buf's tile: tile = 16 inputs > 8 entries.
    m.levels[2].temporal[dimIndex(Dim::C)] = 16;
    m.levels[0].temporal[dimIndex(Dim::P)] = 2;

    NestResult r = analyzeNest(h, m, layer);
    EXPECT_FALSE(r.valid);
    EXPECT_NE(r.invalidReason.find("capacity"), std::string::npos);

    // Split C so the tile fits: 8 inside, 2 outside.
    m.levels[2].temporal[dimIndex(Dim::C)] = 8;
    m.levels[0].temporal[dimIndex(Dim::C)] = 2;
    r = analyzeNest(h, m, layer);
    EXPECT_TRUE(r.valid) << r.invalidReason;
    EXPECT_EQ(r.nodes[1].tensors[kI].tile, 8);
}

TEST(SliceDims, InputBitSerialScalesDacNotAdc)
{
    // Bit-serial inputs: IB = 4 temporal slices. DAC converts scale x4;
    // ADC reads scale x4 too (one read per slice-cycle) unless an
    // accumulator coalesces — here we accumulate in the buffer.
    Hierarchy h = fig5Macro();
    Layer layer = matmulLayer("mvm", 4, 2, 2);
    layer.dims[dimIndex(Dim::IB)] = 4;

    Mapping m = Mapping::identity(h);
    m.levels[6].spatial[dimIndex(Dim::C)] = 2;
    m.levels[4].spatial[dimIndex(Dim::K)] = 2;
    m.levels[0].temporal[dimIndex(Dim::P)] = 4;
    m.levels[0].temporal[dimIndex(Dim::IB)] = 4;

    NestResult r = analyzeNest(h, m, layer);
    ASSERT_TRUE(r.valid) << r.invalidReason;
    EXPECT_DOUBLE_EQ(r.totalOps, 64.0);
    EXPECT_DOUBLE_EQ(r.nodes[3].tensors[kI].actions, 32.0); // 8 x 4 slices
    EXPECT_DOUBLE_EQ(r.nodes[5].tensors[kO].actions, 32.0); // 8 x 4 cycles
    EXPECT_EQ(r.steps, 16);
}

TEST(Conservation, ReadsNeverBelowDistinctData)
{
    // Property: a storage node's fills are at least the tensor footprint
    // it is the backing store for (every datum enters at least once).
    Fig5Fixture f;
    NestResult r = analyzeNest(f.h, f.m, f.layer);
    ASSERT_TRUE(r.valid);
    EXPECT_GE(r.nodes[0].tensors[kI].fills,
              static_cast<double>(f.layer.tensorSize(TensorKind::Input)));
    EXPECT_GE(r.nodes[6].tensors[kW].fills * r.nodes[6].tensors[kW].tile,
              static_cast<double>(f.layer.tensorSize(TensorKind::Weight)));
}

} // namespace
} // namespace cimloop::mapping
