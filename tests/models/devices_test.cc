#include "cimloop/models/devices.hh"

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"
#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/workload/networks.hh"

namespace cimloop::models {
namespace {

TEST(Presets, AllNamedAndDistinct)
{
    std::vector<std::string> names = devicePresetNames();
    ASSERT_EQ(names.size(), 5u);
    for (const std::string& n : names) {
        const DevicePreset& p = devicePreset(n);
        EXPECT_EQ(p.name, n);
        EXPECT_FALSE(p.cellClass.empty());
        EXPECT_GE(p.maxBitsPerCell, 1);
    }
    EXPECT_THROW(devicePreset("DRAM-cell"), FatalError);
}

TEST(Presets, CaseInsensitiveLookup)
{
    EXPECT_EQ(devicePreset("reram").name, "ReRAM");
    EXPECT_EQ(devicePreset("stt-mram").name, "STT-MRAM");
}

TEST(Presets, TechnologyCharacter)
{
    // STT-MRAM is binary-only with a low on/off ratio.
    const DevicePreset& stt = devicePreset("STT-MRAM");
    EXPECT_EQ(stt.maxBitsPerCell, 1);
    double ratio = stt.attributes.at("g_on_us").asDouble() /
                   stt.attributes.at("g_off_us").asDouble();
    EXPECT_LT(ratio, 5.0);

    // ReRAM stores analog multi-level weights with a high ratio.
    const DevicePreset& reram = devicePreset("ReRAM");
    EXPECT_GE(reram.maxBitsPerCell, 2);
    EXPECT_GT(reram.attributes.at("g_on_us").asDouble() /
                  reram.attributes.at("g_off_us").asDouble(),
              10.0);

    // PCM programming (melt-quench) costs more than FeFET.
    EXPECT_GT(devicePreset("PCM").attributes.at("write_energy_pj")
                  .asDouble(),
              devicePreset("FeFET").attributes.at("write_energy_pj")
                  .asDouble());

    // SRAM is volatile.
    EXPECT_FALSE(devicePreset("SRAM").nonVolatile);
    EXPECT_TRUE(devicePreset("PCM").nonVolatile);
}

TEST(Apply, RetargetsCellNode)
{
    engine::Arch arch = macros::macroC();
    EXPECT_EQ(arch.hierarchy.node("cells").klass, "ReRAMCell");
    applyDevicePreset(arch.hierarchy, "cells", devicePreset("SRAM"));
    EXPECT_EQ(arch.hierarchy.node("cells").klass, "SRAMCell");
    EXPECT_DOUBLE_EQ(arch.hierarchy.node("cells").attrDouble(
                         "mac_energy_fj", 0.0),
                     1.8);
    // Directives are untouched: still the weight store.
    EXPECT_TRUE(arch.hierarchy.node("cells").stores(
        workload::TensorKind::Weight));
}

TEST(Apply, KeepsUnrelatedAttributes)
{
    engine::Arch arch = macros::macroC();
    double idle_before =
        arch.hierarchy.node("cells").attrDouble("idle_fraction", -1.0);
    applyDevicePreset(arch.hierarchy, "cells", devicePreset("PCM"));
    EXPECT_DOUBLE_EQ(arch.hierarchy.node("cells").attrDouble(
                         "idle_fraction", -1.0),
                     idle_before);
}

TEST(Apply, UnknownNodeFatal)
{
    engine::Arch arch = macros::macroC();
    EXPECT_THROW(
        applyDevicePreset(arch.hierarchy, "bitcells",
                          devicePreset("ReRAM")),
        FatalError);
}

TEST(Apply, EveryPresetEvaluates)
{
    workload::Layer layer = workload::matmulLayer("mvm", 256, 256, 64);
    layer.network = "mvm";
    for (const std::string& name : devicePresetNames()) {
        const DevicePreset& preset = devicePreset(name);
        macros::MacroParams p = macros::macroCDefaults();
        p.cellBits = std::min(p.cellBits, preset.maxBitsPerCell);
        engine::Arch arch = macros::macroC(p);
        applyDevicePreset(arch.hierarchy, "cells", preset);
        arch.rep.cellBits = p.cellBits;
        engine::SearchResult sr =
            engine::searchMappings(arch, layer, 30, 1);
        EXPECT_TRUE(sr.best.valid) << name;
        EXPECT_GT(sr.best.energyPj, 0.0) << name;
    }
}

TEST(Apply, WriteCostShowsUpInCellFills)
{
    // PCM's expensive programming must surface in the cells' energy on a
    // workload where weights are written once and read few times.
    workload::Layer layer = workload::matmulLayer("mvm", 2, 256, 64);
    layer.network = "mvm";
    auto cellEnergy = [&](const char* device) {
        const DevicePreset& preset = devicePreset(device);
        macros::MacroParams p = macros::macroCDefaults();
        p.cellBits = std::min(p.cellBits, preset.maxBitsPerCell);
        engine::Arch arch = macros::macroC(p);
        applyDevicePreset(arch.hierarchy, "cells", preset);
        arch.rep.cellBits = p.cellBits;
        engine::PerActionTable table = engine::precompute(arch, layer);
        mapping::Mapper mapper(arch.hierarchy, table.extLayer);
        engine::Evaluation ev =
            engine::evaluate(arch, table, mapper.greedy());
        return ev.nodeEnergyPj[arch.hierarchy.indexOf("cells")];
    };
    EXPECT_GT(cellEnergy("PCM"), 2.0 * cellEnergy("FeFET"));
}

TEST(Leakage, StaticPowerReported)
{
    PluginRegistry& reg = PluginRegistry::instance();
    spec::SpecNode node;
    node.name = "dut";
    ComponentContext ctx;
    ctx.node = &node;
    ctx.technologyNm = 65.0;

    // Volatile storage leaks; the ReRAM read path reports none.
    EXPECT_GT(reg.require("SRAM").estimate(ctx).staticPowerUw, 0.0);
    EXPECT_GT(reg.require("SRAMCell").estimate(ctx).staticPowerUw, 0.0);
    EXPECT_DOUBLE_EQ(reg.require("ReRAMCell").estimate(ctx).staticPowerUw,
                     0.0);
    // ADCs fold bias into per-convert energy (power-gated between uses).
    node.attributes["resolution"] = yaml::Node::makeInt(6);
    EXPECT_DOUBLE_EQ(reg.require("ADC").estimate(ctx).staticPowerUw, 0.0);
}

TEST(Leakage, EngineChargesAndCanDisable)
{
    macros::MacroParams p = macros::macroADefaults(); // SRAM cells leak
    engine::Arch arch = macros::macroA(p);
    workload::Layer layer = workload::matmulLayer("mvm", 64, 768, 32);
    layer.network = "mvm";
    engine::PerActionTable table = engine::precompute(arch, layer);
    mapping::Mapper mapper(arch.hierarchy, table.extLayer);
    mapping::Mapping m = mapper.greedy();

    engine::Evaluation with_leak = engine::evaluate(arch, table, m);
    arch.includeLeakage = false;
    engine::Evaluation without = engine::evaluate(arch, table, m);
    EXPECT_GT(with_leak.energyPj, without.energyPj);
    EXPECT_DOUBLE_EQ(with_leak.latencyNs, without.latencyNs);
}

} // namespace
} // namespace cimloop::models
