#include "cimloop/models/component.hh"

#include <cmath>

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"
#include "cimloop/dist/operands.hh"

namespace cimloop::models {
namespace {

using dist::EncodedTensor;
using dist::Encoding;
using dist::Pmf;
using spec::tensorIndex;

constexpr int kI = tensorIndex(TensorKind::Input);
constexpr int kW = tensorIndex(TensorKind::Weight);
constexpr int kO = tensorIndex(TensorKind::Output);

/** Context with a node owning the given attributes. */
struct CtxFixture
{
    spec::SpecNode node;
    ComponentContext ctx;

    explicit CtxFixture(double nm = 65.0)
    {
        node.name = "dut";
        ctx.node = &node;
        ctx.technologyNm = nm;
        // Mid-scale operand representations by default.
        ctx.tensors[kI] = dist::encodeOperands(
            Pmf::quantizedGaussian(40.0, 20.0, 0, 255), Encoding::Unsigned,
            8);
        ctx.tensors[kW] = dist::encodeOperands(
            Pmf::quantizedGaussian(0.0, 20.0, -128, 127), Encoding::Offset,
            8);
        ctx.tensors[kO] = dist::encodeOperands(
            Pmf::quantizedGaussian(0.0, 30.0, -128, 127),
            Encoding::TwosComplement, 16);
    }

    void
    setAttr(const std::string& key, double v)
    {
        node.attributes[key] = yaml::Node::makeFloat(v);
    }

    void
    setAttr(const std::string& key, std::int64_t v)
    {
        node.attributes[key] = yaml::Node::makeInt(v);
    }
};

TEST(Registry, BuiltinsPresent)
{
    PluginRegistry& reg = PluginRegistry::instance();
    for (const char* name :
         {"ADC", "DAC", "SRAMCell", "ReRAMCell", "AnalogAdder",
          "AnalogAccumulator", "CapacitorMac", "DigitalAdder", "ShiftAdd",
          "DigitalMac", "SRAM", "DRAM", "Router", "LineDriver", "Wire"}) {
        EXPECT_NE(reg.find(name), nullptr) << name;
    }
    EXPECT_EQ(reg.find("Bogus"), nullptr);
    EXPECT_THROW(reg.require("Bogus"), FatalError);
    // Case-insensitive lookup.
    EXPECT_NE(reg.find("adc"), nullptr);
}

TEST(Registry, UserPluginOverridesAndExtends)
{
    class MyModel : public ComponentModel
    {
      public:
        std::string className() const override { return "MyPhotonicMzi"; }
        std::string description() const override { return "test"; }
        ComponentEstimate
        estimate(const ComponentContext&) const override
        {
            ComponentEstimate e;
            e.areaUm2 = 42.0;
            return e;
        }
    };
    PluginRegistry& reg = PluginRegistry::instance();
    reg.add(std::make_unique<MyModel>());
    CtxFixture f;
    EXPECT_DOUBLE_EQ(reg.require("myphotonicmzi").estimate(f.ctx).areaUm2,
                     42.0);
}

TEST(Adc, EnergyGrowsExponentiallyWithBits)
{
    CtxFixture f;
    const ComponentModel& adc = PluginRegistry::instance().require("ADC");
    f.setAttr("resolution", std::int64_t{4});
    double e4 = adc.estimate(f.ctx).actionEnergyPj[kO];
    f.setAttr("resolution", std::int64_t{8});
    double e8 = adc.estimate(f.ctx).actionEnergyPj[kO];
    f.setAttr("resolution", std::int64_t{12});
    double e12 = adc.estimate(f.ctx).actionEnergyPj[kO];
    // Walden regime at moderate resolution: ~2x per bit...
    EXPECT_GT(e8 / e4, 16.0);
    EXPECT_LT(e8 / e4, 32.0);
    // ...thermal-noise regime at high resolution: ~4x per bit.
    EXPECT_GT(e12 / e8, 32.0);
    EXPECT_GT(e4, 0.0);
}

TEST(Adc, ValueAwareSpendsLessOnSmallValues)
{
    CtxFixture f;
    f.setAttr("value_aware", std::int64_t{1});
    const ComponentModel& adc = PluginRegistry::instance().require("ADC");
    f.ctx.tensors[kO] = dist::encodeOperands(Pmf::delta(2.0),
                                             Encoding::Unsigned, 8);
    double small = adc.estimate(f.ctx).actionEnergyPj[kO];
    f.ctx.tensors[kO] = dist::encodeOperands(Pmf::delta(250.0),
                                             Encoding::Unsigned, 8);
    double large = adc.estimate(f.ctx).actionEnergyPj[kO];
    EXPECT_LT(small, large);
}

TEST(Dac, EnergyTracksInputValue)
{
    CtxFixture f;
    const ComponentModel& dac = PluginRegistry::instance().require("DAC");
    f.ctx.tensors[kI] = dist::encodeOperands(Pmf::delta(10.0),
                                             Encoding::Unsigned, 8);
    double small = dac.estimate(f.ctx).actionEnergyPj[kI];
    f.ctx.tensors[kI] = dist::encodeOperands(Pmf::delta(240.0),
                                             Encoding::Unsigned, 8);
    double large = dac.estimate(f.ctx).actionEnergyPj[kI];
    // Paper Fig. 4: data-value-dependence swings DAC energy > 2.5x.
    EXPECT_GT(large / small, 2.5);
}

TEST(ReramCell, FollowsGV2T)
{
    CtxFixture f;
    const ComponentModel& cell =
        PluginRegistry::instance().require("ReRAMCell");
    // Doubling read time doubles energy.
    f.setAttr("t_read_ns", 10.0);
    double e1 = cell.estimate(f.ctx).readEnergyPj[kW];
    f.setAttr("t_read_ns", 20.0);
    double e2 = cell.estimate(f.ctx).readEnergyPj[kW];
    EXPECT_NEAR(e2 / e1, 2.0, 1e-9);

    // Larger input values -> larger V^2 -> more energy.
    f.ctx.tensors[kI] = dist::encodeOperands(Pmf::delta(255.0),
                                             Encoding::Unsigned, 8);
    double big_in = cell.estimate(f.ctx).readEnergyPj[kW];
    f.ctx.tensors[kI] = dist::encodeOperands(Pmf::delta(32.0),
                                             Encoding::Unsigned, 8);
    double small_in = cell.estimate(f.ctx).readEnergyPj[kW];
    EXPECT_GT(big_in, small_in);
}

TEST(Sram, EnergyGrowsWithCapacity)
{
    CtxFixture f;
    const ComponentModel& sram = PluginRegistry::instance().require("SRAM");
    f.setAttr("entries", std::int64_t{1024});
    f.setAttr("width", std::int64_t{64});
    double small = sram.estimate(f.ctx).readEnergyPj[kI];
    f.setAttr("entries", std::int64_t{65536});
    double large = sram.estimate(f.ctx).readEnergyPj[kI];
    EXPECT_GT(large, small);
    // Area scales roughly with bits.
    f.setAttr("entries", std::int64_t{1024});
    double a1 = sram.estimate(f.ctx).areaUm2;
    f.setAttr("entries", std::int64_t{4096});
    double a4 = sram.estimate(f.ctx).areaUm2;
    EXPECT_NEAR(a4 / a1, 4.0, 0.5);
}

TEST(Dram, CostsMoreThanSram)
{
    CtxFixture f;
    double dram =
        PluginRegistry::instance().require("DRAM").estimate(f.ctx)
            .readEnergyPj[kI];
    f.setAttr("entries", std::int64_t{8192});
    f.setAttr("width", std::int64_t{64});
    double sram =
        PluginRegistry::instance().require("SRAM").estimate(f.ctx)
            .readEnergyPj[kI];
    EXPECT_GT(dram, 5.0 * sram); // off-chip >> on-chip
}

TEST(Tech, ScalingMonotone)
{
    // Smaller nodes: less energy, less area, faster.
    EXPECT_LT(energyScale(65.0, 7.0), 1.0);
    EXPECT_LT(areaScale(65.0, 7.0), 1.0);
    EXPECT_LT(delayScale(65.0, 7.0), 1.0);
    EXPECT_GT(energyScale(65.0, 130.0), 1.0);
    // Identity.
    EXPECT_NEAR(energyScale(65.0, 65.0), 1.0, 1e-12);
    // Interpolated nodes are bracketed.
    double e22 = techParams(22.0).energyFactor;
    double e28 = techParams(28.0).energyFactor;
    double e25 = techParams(25.0).energyFactor;
    EXPECT_GT(e25, e22);
    EXPECT_LT(e25, e28);
    EXPECT_THROW(techParams(-1.0), FatalError);
}

TEST(Voltage, EnergyQuadraticFrequencyAlphaPower)
{
    TechParams t = techParams(65.0);
    VoltageModel vm(t);
    EXPECT_NEAR(vm.energyFactor(t.vNominal), 1.0, 1e-12);
    EXPECT_NEAR(vm.energyFactor(t.vNominal / 2.0), 0.25, 1e-12);
    EXPECT_NEAR(vm.frequencyFactor(t.vNominal), 1.0, 1e-12);
    EXPECT_LT(vm.frequencyFactor(t.vNominal * 0.7), 1.0);
    EXPECT_GT(vm.frequencyFactor(t.vNominal * 1.2), 1.0);
    EXPECT_THROW(vm.frequencyFactor(t.vThreshold), FatalError);
    EXPECT_THROW(vm.energyFactor(0.0), FatalError);
}

TEST(Voltage, ComponentEnergyScalesWithSupply)
{
    CtxFixture f;
    const ComponentModel& dac = PluginRegistry::instance().require("DAC");
    double nominal = dac.estimate(f.ctx).actionEnergyPj[kI];
    f.ctx.supplyVoltage = techParams(65.0).vNominal * 0.8;
    double low = dac.estimate(f.ctx).actionEnergyPj[kI];
    EXPECT_NEAR(low / nominal, 0.64, 1e-6);
    // Lower voltage also slows the component down.
    EXPECT_GT(dac.estimate(f.ctx).latencyNs, 0.0);
}

TEST(DigitalMac, ScalesWithBitProduct)
{
    CtxFixture f;
    const ComponentModel& mac =
        PluginRegistry::instance().require("DigitalMac");
    double e8x8 = mac.estimate(f.ctx).actionEnergyPj[kO];
    f.ctx.tensors[kI] = dist::encodeOperands(
        Pmf::quantizedGaussian(8.0, 4.0, 0, 15), Encoding::Unsigned, 4);
    double e4x8 = mac.estimate(f.ctx).actionEnergyPj[kO];
    EXPECT_NEAR(e8x8 / e4x8, 2.0, 1e-6);
}

TEST(AnalogAdder, DataValueDependent)
{
    CtxFixture f;
    const ComponentModel& adder =
        PluginRegistry::instance().require("AnalogAdder");
    f.ctx.tensors[kI] = dist::encodeOperands(Pmf::delta(250.0),
                                             Encoding::Unsigned, 8);
    f.ctx.tensors[kW] = dist::encodeOperands(Pmf::delta(120.0),
                                             Encoding::MagnitudeOnly, 8);
    double big = adder.estimate(f.ctx).actionEnergyPj[kO];
    f.ctx.tensors[kI] = dist::encodeOperands(Pmf::delta(8.0),
                                             Encoding::Unsigned, 8);
    double small = adder.estimate(f.ctx).actionEnergyPj[kO];
    // Paper Fig. 11: Macro B data-value effects reach ~2.3x.
    EXPECT_GT(big / small, 2.0);
}

TEST(Wire, IsFree)
{
    CtxFixture f;
    ComponentEstimate e =
        PluginRegistry::instance().require("Wire").estimate(f.ctx);
    EXPECT_DOUBLE_EQ(e.areaUm2, 0.0);
    for (int ti = 0; ti < workload::kNumTensors; ++ti) {
        EXPECT_DOUBLE_EQ(e.readEnergyPj[ti], 0.0);
        EXPECT_DOUBLE_EQ(e.actionEnergyPj[ti], 0.0);
    }
}

class NodeSweep : public ::testing::TestWithParam<double>
{};

TEST_P(NodeSweep, AllModelsProduceFiniteNonNegativeEstimates)
{
    CtxFixture f(GetParam());
    PluginRegistry& reg = PluginRegistry::instance();
    for (const std::string& name : reg.classNames()) {
        ComponentEstimate e = reg.require(name).estimate(f.ctx);
        EXPECT_GE(e.areaUm2, 0.0) << name;
        EXPECT_GE(e.latencyNs, 0.0) << name;
        for (int ti = 0; ti < workload::kNumTensors; ++ti) {
            EXPECT_GE(e.readEnergyPj[ti], 0.0) << name;
            EXPECT_GE(e.fillEnergyPj[ti], 0.0) << name;
            EXPECT_GE(e.actionEnergyPj[ti], 0.0) << name;
            EXPECT_TRUE(std::isfinite(e.readEnergyPj[ti])) << name;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Nodes, NodeSweep,
                         ::testing::Values(7.0, 22.0, 40.0, 65.0, 130.0));

} // namespace
} // namespace cimloop::models
