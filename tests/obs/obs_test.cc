/**
 * cimloop::obs unit tests: counter registry semantics, span aggregation
 * (including under parallelFor), reset behavior, and the three exporters.
 *
 * Suites are prefixed "Obs" so the CI ThreadSanitizer job can select
 * them with --gtest_filter='Obs*'.
 */
#include "cimloop/obs/obs.hh"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "cimloop/common/parallel.hh"

namespace cimloop {
namespace {

/** Every obs test starts from zeroed counters and disabled timing. */
class ObsFixture : public ::testing::Test {
protected:
    void SetUp() override
    {
        obs::setTraceEnabled(false);
        obs::setTimingEnabled(false);
        obs::resetAll();
    }
    void TearDown() override
    {
        obs::setTraceEnabled(false);
        obs::setTimingEnabled(false);
        obs::resetAll();
    }
};

using ObsCounter = ObsFixture;
using ObsSpan = ObsFixture;
using ObsExport = ObsFixture;

std::uint64_t
counterValue(const obs::MetricsSnapshot& snap, const std::string& name)
{
    for (const auto& [n, v] : snap.counters)
        if (n == name)
            return v;
    return static_cast<std::uint64_t>(-1);
}

TEST_F(ObsCounter, StartsAtZeroAndAccumulates)
{
    obs::Counter& c = obs::counter("obs_test.basic");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST_F(ObsCounter, SameNameYieldsSameCounter)
{
    obs::Counter& a = obs::counter("obs_test.same");
    obs::Counter& b = obs::counter("obs_test.same");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(b.value(), 3u);
}

TEST_F(ObsCounter, ReferencesSurviveReset)
{
    obs::Counter& c = obs::counter("obs_test.survives_reset");
    c.add(7);
    obs::resetAll();
    EXPECT_EQ(c.value(), 0u);
    c.add(2); // the old reference still targets the live counter
    EXPECT_EQ(obs::counter("obs_test.survives_reset").value(), 2u);
}

TEST_F(ObsCounter, ConcurrentIncrementsAreLossless)
{
    obs::Counter& c = obs::counter("obs_test.concurrent");
    parallelFor(8, 10000, [&](std::size_t) { c.add(); });
    EXPECT_EQ(c.value(), 10000u);
}

TEST_F(ObsCounter, SnapshotIsSortedByName)
{
    obs::counter("obs_test.zzz").add();
    obs::counter("obs_test.aaa").add();
    obs::MetricsSnapshot snap = obs::snapshot();
    ASSERT_GE(snap.counters.size(), 2u);
    for (std::size_t i = 1; i < snap.counters.size(); ++i)
        EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
}

TEST_F(ObsSpan, DisabledTimingRecordsNothing)
{
    {
        CIM_SPAN("obs_test.span.disabled");
    }
    EXPECT_TRUE(obs::snapshot().spans.empty());
}

TEST_F(ObsSpan, EnabledTimingAggregatesCountAndTotals)
{
    obs::setTimingEnabled(true);
    for (int i = 0; i < 5; ++i) {
        CIM_SPAN("obs_test.span.agg");
    }
    obs::MetricsSnapshot snap = obs::snapshot();
    ASSERT_EQ(snap.spans.size(), 1u);
    EXPECT_EQ(snap.spans[0].name, "obs_test.span.agg");
    EXPECT_EQ(snap.spans[0].count, 5u);
    EXPECT_GE(snap.spans[0].total_ns, 0);
    EXPECT_LE(snap.spans[0].min_ns, snap.spans[0].max_ns);
    EXPECT_GE(snap.spans[0].total_ns,
              snap.spans[0].min_ns * 5); // total >= 5 * min
}

TEST_F(ObsSpan, MeasuresElapsedWallTime)
{
    obs::setTimingEnabled(true);
    {
        CIM_SPAN("obs_test.span.sleep");
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    obs::MetricsSnapshot snap = obs::snapshot();
    ASSERT_EQ(snap.spans.size(), 1u);
    EXPECT_GE(snap.spans[0].total_ns, 2'000'000);
}

TEST_F(ObsSpan, ComposesWithParallelFor)
{
    obs::setTimingEnabled(true);
    parallelFor(4, 64, [&](std::size_t) {
        CIM_SPAN("obs_test.span.parallel");
    });
    obs::MetricsSnapshot snap = obs::snapshot();
    ASSERT_EQ(snap.spans.size(), 1u);
    EXPECT_EQ(snap.spans[0].count, 64u);
    EXPECT_GE(snap.spans[0].threads, 1);
    EXPECT_LE(snap.spans[0].threads, 5); // 4 workers + maybe the caller
}

TEST_F(ObsSpan, EnablingTraceImpliesTiming)
{
    obs::setTraceEnabled(true);
    EXPECT_TRUE(obs::timingEnabled());
    {
        CIM_SPAN("obs_test.span.traced");
    }
    std::string trace = obs::traceJson();
    EXPECT_NE(trace.find("obs_test.span.traced"), std::string::npos);
}

TEST_F(ObsSpan, ThreadIdsAreSmallAndStablePerThread)
{
    int a = obs::currentThreadId();
    int b = obs::currentThreadId();
    EXPECT_EQ(a, b);
    EXPECT_GE(a, 0);
}

TEST_F(ObsExport, CountersJsonOmitsZeroesAndSorts)
{
    obs::counter("obs_test.json.zero"); // registered, stays zero
    obs::counter("obs_test.json.b").add(2);
    obs::counter("obs_test.json.a").add(1);
    std::string json = obs::countersJson(obs::snapshot());
    EXPECT_EQ(json.find("obs_test.json.zero"), std::string::npos);
    std::size_t pa = json.find("obs_test.json.a");
    std::size_t pb = json.find("obs_test.json.b");
    ASSERT_NE(pa, std::string::npos);
    ASSERT_NE(pb, std::string::npos);
    EXPECT_LT(pa, pb);
    EXPECT_NE(json.find("\"obs_test.json.a\": 1"), std::string::npos);
}

TEST_F(ObsExport, CountersJsonIsReproducible)
{
    obs::counter("obs_test.repro").add(9);
    std::string a = obs::countersJson(obs::snapshot());
    std::string b = obs::countersJson(obs::snapshot());
    EXPECT_EQ(a, b); // same state, byte-identical export
}

TEST_F(ObsExport, MetricsJsonEmbedsCountersBlockVerbatim)
{
    obs::counter("obs_test.embed").add(4);
    obs::MetricsSnapshot snap = obs::snapshot();
    std::string full = obs::metricsJson(snap);
    // The counters block inside the full document is byte-identical to
    // countersJson() — scripts extract it by line range and diff it.
    EXPECT_NE(full.find(obs::countersJson(snap)), std::string::npos);
    EXPECT_NE(full.find("\"spans\": {"), std::string::npos);
}

TEST_F(ObsExport, SummaryTableListsNonZeroCounters)
{
    obs::counter("obs_test.table.visible").add(123);
    obs::counter("obs_test.table.hidden");
    std::string table = obs::summaryTable(obs::snapshot());
    EXPECT_NE(table.find("obs_test.table.visible"), std::string::npos);
    EXPECT_NE(table.find("123"), std::string::npos);
    EXPECT_EQ(table.find("obs_test.table.hidden"), std::string::npos);
}

TEST_F(ObsExport, TraceJsonIsStructurallyChromeLoadable)
{
    obs::setTraceEnabled(true);
    {
        CIM_SPAN("obs_test.trace.one");
    }
    parallelFor(2, 4, [&](std::size_t) {
        CIM_SPAN("obs_test.trace.worker");
    });
    std::string trace = obs::traceJson();
    // Top-level object with the required trace-event fields.
    EXPECT_EQ(trace.find("{\"traceEvents\":["), 0u);
    EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(trace.find("\"ts\":"), std::string::npos);
    EXPECT_NE(trace.find("\"dur\":"), std::string::npos);
    EXPECT_NE(trace.find("\"pid\":1"), std::string::npos);
    EXPECT_NE(trace.find("\"tid\":"), std::string::npos);
    EXPECT_NE(trace.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
    // 5 spans closed while tracing: 5 events.
    std::size_t events = 0;
    for (std::size_t p = trace.find("\"ph\":\"X\"");
         p != std::string::npos; p = trace.find("\"ph\":\"X\"", p + 1))
        ++events;
    EXPECT_EQ(events, 5u);
}

TEST_F(ObsExport, TraceBufferClearsOnReset)
{
    obs::setTraceEnabled(true);
    {
        CIM_SPAN("obs_test.trace.cleared");
    }
    obs::resetAll();
    EXPECT_EQ(obs::traceJson().find("obs_test.trace.cleared"),
              std::string::npos);
}

TEST_F(ObsExport, SnapshotCarriesRegisteredZeroCounters)
{
    // snapshot() itself keeps zero-valued counters (library users may
    // want them); only the JSON exporter filters.
    obs::counter("obs_test.snapshot.zero");
    EXPECT_EQ(counterValue(obs::snapshot(), "obs_test.snapshot.zero"), 0u);
}

} // namespace
} // namespace cimloop
