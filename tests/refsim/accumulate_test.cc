/** Macro-C-style cross-cycle accumulation in the value-level simulator
 *  (validates the Fig. 3 "analog accumulator" strategy at value level). */
#include "cimloop/refsim/refsim.hh"

#include <gtest/gtest.h>

#include "cimloop/workload/networks.hh"

namespace cimloop::refsim {
namespace {

RefSimConfig
config(bool accumulate)
{
    RefSimConfig c;
    c.rows = 64;
    c.cols = 64;
    c.inputBits = 8;
    c.dacBits = 1;
    c.maxVectors = 16;
    c.accumulateAcrossInputBits = accumulate;
    return c;
}

workload::Layer
layer()
{
    workload::Layer l = workload::resnet18().layers[5];
    l.dims[workload::dimIndex(workload::Dim::P)] = 4;
    l.dims[workload::dimIndex(workload::Dim::Q)] = 4;
    return l;
}

TEST(Accumulate, CutsAdcEnergyByInputBits)
{
    RefSimResult per_cycle = simulateValueLevel(config(false), layer());
    RefSimResult accumulated = simulateValueLevel(config(true), layer());
    // 8 bit-serial cycles merge into one convert: ~8x less ADC energy
    // (value-aware conversion keeps it from being exactly 8x).
    EXPECT_GT(per_cycle.adcPj / accumulated.adcPj, 4.0);
    EXPECT_LT(per_cycle.adcPj / accumulated.adcPj, 12.0);
    // DAC and cell activity still pay per cycle.
    EXPECT_NEAR(per_cycle.dacPj / accumulated.dacPj, 1.0, 1e-9);
    EXPECT_NEAR(per_cycle.cellPj / accumulated.cellPj, 1.0, 1e-9);
}

TEST(Accumulate, StatisticalModelTracksIt)
{
    RefSimConfig c = config(true);
    workload::Layer l = layer();
    dist::OperandProfile prof;
    RefSimResult truth = simulateValueLevel(c, l, &prof);
    RefSimResult stat = estimateStatistical(c, l, prof);
    EXPECT_NEAR(stat.totalPj() / truth.totalPj(), 1.0, 0.10);
    // And the count bookkeeping agrees with the value-level loop.
    EXPECT_DOUBLE_EQ(stat.ops, truth.ops);
}

TEST(Accumulate, InputBitInvariantAdc)
{
    // The defining Macro C property at value level: ADC energy does not
    // scale with input precision when accumulating.
    RefSimConfig c2 = config(true);
    c2.inputBits = 2;
    RefSimConfig c8 = config(true);
    c8.inputBits = 8;
    RefSimResult r2 = simulateValueLevel(c2, layer());
    RefSimResult r8 = simulateValueLevel(c8, layer());
    EXPECT_NEAR(r8.adcPj / r2.adcPj, 1.0, 0.25); // value effects only
    EXPECT_NEAR(r8.dacPj / r2.dacPj, 4.0, 1.0);  // 8/2 serial cycles
}

} // namespace
} // namespace cimloop::refsim
