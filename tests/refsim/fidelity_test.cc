/**
 * Multi-fidelity distributions (paper Sec. III-D1): users may trade
 * distribution fidelity for profiling effort. Low fidelity = a uniform
 * guess over the operand range; moderate = the closed-form synthetic
 * per-layer profile; high = the empirical PMFs recorded from the actual
 * (value-level) tensors. Estimates must improve with fidelity.
 */
#include "cimloop/refsim/refsim.hh"

#include <cmath>

#include <gtest/gtest.h>

#include "cimloop/dist/operands.hh"
#include "cimloop/workload/networks.hh"

namespace cimloop::refsim {
namespace {

TEST(Fidelity, ErrorShrinksWithDistributionQuality)
{
    RefSimConfig cfg;
    cfg.rows = 64;
    cfg.cols = 64;
    cfg.maxVectors = 24;

    workload::Network net = workload::resnet18();
    double low_sum = 0.0, mid_sum = 0.0, high_sum = 0.0;
    int count = 0;
    for (int idx : {4, 9, 15}) {
        workload::Layer l = net.layers[idx];
        l.dims[workload::dimIndex(workload::Dim::P)] = 4;
        l.dims[workload::dimIndex(workload::Dim::Q)] = 4;

        dist::OperandProfile recorded;
        double truth = simulateValueLevel(cfg, l, &recorded).totalPj();

        // Low fidelity: uniform guesses over the representable ranges.
        dist::OperandProfile low;
        low.inputs = dist::Pmf::uniformInt(0, 127);
        low.weights = dist::Pmf::uniformInt(-128, 127);
        low.outputs = dist::Pmf::uniformInt(-128, 127);

        // Moderate fidelity: the closed-form synthetic profile.
        dist::OperandProfile mid = dist::synthesizeOperands(
            l.network, l.index, l.networkLayers, cfg.inputBits,
            cfg.weightBits);

        double low_err = std::abs(
            estimateStatistical(cfg, l, low).totalPj() - truth) / truth;
        double mid_err = std::abs(
            estimateStatistical(cfg, l, mid).totalPj() - truth) / truth;
        double high_err = std::abs(
            estimateStatistical(cfg, l, recorded).totalPj() - truth) /
            truth;
        low_sum += low_err;
        mid_sum += mid_err;
        high_sum += high_err;
        ++count;
    }
    double low = low_sum / count, mid = mid_sum / count,
           high = high_sum / count;
    // Recorded (high-fidelity) distributions beat both cheaper tiers,
    // and the uniform guess is the worst.
    EXPECT_LT(high, mid);
    EXPECT_LT(mid, low);
    EXPECT_LT(high, 0.05);
    EXPECT_GT(low, 0.20);
}

TEST(Correlation, ZeroContrastMakesOperandsIndependent)
{
    // With contrastStd = 0 the statistical estimate converges to truth
    // (only CLT + sampling noise remains).
    RefSimConfig cfg;
    cfg.rows = 64;
    cfg.cols = 64;
    cfg.maxVectors = 32;
    cfg.contrastStd = 0.0;
    workload::Layer l = workload::resnet18().layers[6];
    l.dims[workload::dimIndex(workload::Dim::P)] = 4;
    l.dims[workload::dimIndex(workload::Dim::Q)] = 4;

    dist::OperandProfile prof;
    double truth = simulateValueLevel(cfg, l, &prof).totalPj();
    double stat = estimateStatistical(cfg, l, prof).totalPj();
    EXPECT_NEAR(stat / truth, 1.0, 0.03);
}

TEST(Correlation, StrongerContrastWidensValueSpread)
{
    RefSimConfig cfg;
    cfg.rows = 32;
    cfg.cols = 32;
    cfg.maxVectors = 32;
    workload::Layer l = workload::resnet18().layers[6];
    l.dims[workload::dimIndex(workload::Dim::P)] = 4;
    l.dims[workload::dimIndex(workload::Dim::Q)] = 4;

    cfg.contrastStd = 0.0;
    dist::OperandProfile tight;
    simulateValueLevel(cfg, l, &tight);
    cfg.contrastStd = 1.0;
    dist::OperandProfile wide;
    simulateValueLevel(cfg, l, &wide);
    EXPECT_GT(wide.inputs.variance(), tight.inputs.variance());
}

} // namespace
} // namespace cimloop::refsim
