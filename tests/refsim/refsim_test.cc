#include "cimloop/refsim/refsim.hh"

#include <cmath>

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"
#include "cimloop/workload/networks.hh"

namespace cimloop::refsim {
namespace {

using workload::matmulLayer;

RefSimConfig
smallConfig()
{
    RefSimConfig c;
    c.rows = 32;
    c.cols = 32;
    c.inputBits = 8;
    c.weightBits = 8;
    c.dacBits = 1;
    c.cellBits = 1;
    c.adcBits = 5;
    c.maxVectors = 16;
    return c;
}

workload::Layer
testLayer(int index = 3)
{
    workload::Network net = workload::resnet18();
    workload::Layer l = net.layers[index];
    // Shrink spatial extents so value-level simulation stays fast.
    l.dims[workload::dimIndex(workload::Dim::P)] = 4;
    l.dims[workload::dimIndex(workload::Dim::Q)] = 4;
    return l;
}

TEST(ValueLevel, DeterministicForSeed)
{
    RefSimConfig c = smallConfig();
    workload::Layer l = testLayer();
    RefSimResult a = simulateValueLevel(c, l);
    RefSimResult b = simulateValueLevel(c, l);
    EXPECT_DOUBLE_EQ(a.totalPj(), b.totalPj());
    EXPECT_EQ(a.valuesSimulated, b.valuesSimulated);
}

TEST(ValueLevel, DifferentSeedsCloseButNotEqual)
{
    RefSimConfig c = smallConfig();
    workload::Layer l = testLayer();
    RefSimResult a = simulateValueLevel(c, l);
    c.seed = 77;
    RefSimResult b = simulateValueLevel(c, l);
    EXPECT_NE(a.totalPj(), b.totalPj());
    // Same distributional parameters: totals within sampling noise.
    EXPECT_NEAR(a.totalPj() / b.totalPj(), 1.0, 0.35);
}

TEST(ValueLevel, BreakdownComponentsAllPositive)
{
    RefSimResult r = simulateValueLevel(smallConfig(), testLayer());
    EXPECT_GT(r.dacPj, 0.0);
    EXPECT_GT(r.cellPj, 0.0);
    EXPECT_GT(r.adcPj, 0.0);
    EXPECT_GT(r.digitalPj, 0.0);
    EXPECT_GT(r.bufferPj, 0.0);
    EXPECT_GT(r.valuesSimulated, 1000);
}

TEST(ValueLevel, SamplingScalesToFullLayer)
{
    RefSimConfig c = smallConfig();
    workload::Layer l = testLayer();
    c.maxVectors = 8;
    RefSimResult partial = simulateValueLevel(c, l);
    c.maxVectors = 16;
    RefSimResult more = simulateValueLevel(c, l);
    // Both estimates target the same whole-layer energy.
    EXPECT_NEAR(partial.totalPj() / more.totalPj(), 1.0, 0.3);
    EXPECT_DOUBLE_EQ(partial.ops, more.ops);
}

TEST(ValueLevel, RecordsProfile)
{
    RefSimConfig c = smallConfig();
    workload::Layer l = testLayer();
    dist::OperandProfile prof;
    simulateValueLevel(c, l, &prof);
    EXPECT_GT(prof.inputs.size(), 4u);
    EXPECT_GT(prof.weights.size(), 8u);
    EXPECT_GE(prof.inputs.minValue(), 0.0); // post-ReLU layer
    EXPECT_LT(prof.weights.minValue(), 0.0);
    EXPECT_GT(prof.inputSparsity, 0.05);
}

TEST(ValueLevel, RejectsHugeLayers)
{
    RefSimConfig c = smallConfig();
    workload::Layer l = matmulLayer("huge", 1, 50000, 50000);
    EXPECT_THROW(simulateValueLevel(c, l), FatalError);
}

// The paper's Fig. 6 relationship: the statistical model tracks the
// value-level ground truth closely; a fixed-energy model frozen at
// network-average distributions errs much more and differently per layer.
TEST(Accuracy, StatisticalBeatsFixedEnergy)
{
    RefSimConfig c = smallConfig();
    c.maxVectors = 24;

    // Record per-layer profiles + ground truth for several layers.
    std::vector<workload::Layer> layers;
    for (int idx : {2, 5, 9, 14, 18})
        layers.push_back(testLayer(idx));

    std::vector<RefSimResult> truth;
    std::vector<dist::OperandProfile> profiles;
    for (const workload::Layer& l : layers) {
        dist::OperandProfile prof;
        truth.push_back(simulateValueLevel(c, l, &prof));
        profiles.push_back(prof);
    }
    dist::OperandProfile avg = averageProfiles(profiles);

    double stat_err_sum = 0.0, fixed_err_sum = 0.0;
    double stat_err_max = 0.0, fixed_err_max = 0.0;
    for (std::size_t i = 0; i < layers.size(); ++i) {
        double t = truth[i].totalPj();
        double s = estimateStatistical(c, layers[i], profiles[i]).totalPj();
        double f = estimateFixedEnergy(c, layers[i], avg).totalPj();
        double se = std::abs(s - t) / t;
        double fe = std::abs(f - t) / t;
        stat_err_sum += se;
        fixed_err_sum += fe;
        stat_err_max = std::max(stat_err_max, se);
        fixed_err_max = std::max(fixed_err_max, fe);
    }
    double stat_avg = stat_err_sum / layers.size();
    double fixed_avg = fixed_err_sum / layers.size();

    // Shape of paper Fig. 6: avg 3% vs 28%. We require the qualitative
    // relationship with margin for the synthetic substrate.
    EXPECT_LT(stat_avg, 0.15);
    EXPECT_GT(fixed_avg, 1.5 * stat_avg);
    EXPECT_LT(stat_err_max, 0.30);
}

TEST(Statistical, ExactCountsMatchValueLevel)
{
    // Both paths must agree on the action counts (ops field).
    RefSimConfig c = smallConfig();
    workload::Layer l = testLayer();
    dist::OperandProfile prof;
    RefSimResult truth = simulateValueLevel(c, l, &prof);
    RefSimResult stat = estimateStatistical(c, l, prof);
    EXPECT_DOUBLE_EQ(truth.ops, stat.ops);
}

TEST(Statistical, BufferEnergyIdentical)
{
    // Buffer traffic is value-independent, so the two estimators must
    // agree exactly on it.
    RefSimConfig c = smallConfig();
    workload::Layer l = testLayer();
    dist::OperandProfile prof;
    RefSimResult truth = simulateValueLevel(c, l, &prof);
    RefSimResult stat = estimateStatistical(c, l, prof);
    EXPECT_NEAR(truth.bufferPj, stat.bufferPj, 1e-9 * truth.bufferPj);
}

TEST(AverageProfiles, MixesUniformly)
{
    dist::OperandProfile a, b;
    a.inputs = dist::Pmf::delta(1.0);
    a.weights = dist::Pmf::delta(2.0);
    a.outputs = dist::Pmf::delta(3.0);
    b.inputs = dist::Pmf::delta(5.0);
    b.weights = dist::Pmf::delta(6.0);
    b.outputs = dist::Pmf::delta(7.0);
    dist::OperandProfile avg = averageProfiles({a, b});
    EXPECT_NEAR(avg.inputs.mean(), 3.0, 1e-12);
    EXPECT_NEAR(avg.weights.mean(), 4.0, 1e-12);
    EXPECT_NEAR(avg.inputs.probOf(1.0), 0.5, 1e-12);
}

TEST(Threads, BitIdenticalAcrossCounts)
{
    // Per-vector counter-derived RNG streams + ordered reduction: the
    // result must be the SAME DOUBLES for any thread count, profile
    // included.
    RefSimConfig c = smallConfig();
    workload::Layer l = testLayer();
    dist::OperandProfile p1;
    c.threads = 1;
    RefSimResult r1 = simulateValueLevel(c, l, &p1);
    for (int threads : {2, 8}) {
        c.threads = threads;
        dist::OperandProfile pn;
        RefSimResult rn = simulateValueLevel(c, l, &pn);
        EXPECT_DOUBLE_EQ(rn.dacPj, r1.dacPj) << threads << " threads";
        EXPECT_DOUBLE_EQ(rn.cellPj, r1.cellPj) << threads << " threads";
        EXPECT_DOUBLE_EQ(rn.adcPj, r1.adcPj) << threads << " threads";
        EXPECT_DOUBLE_EQ(rn.digitalPj, r1.digitalPj)
            << threads << " threads";
        EXPECT_DOUBLE_EQ(rn.bufferPj, r1.bufferPj) << threads << " threads";
        EXPECT_EQ(rn.valuesSimulated, r1.valuesSimulated);
        ASSERT_EQ(pn.inputs.size(), p1.inputs.size());
        for (std::size_t i = 0; i < p1.inputs.size(); ++i) {
            EXPECT_DOUBLE_EQ(pn.inputs.points()[i].value,
                             p1.inputs.points()[i].value);
            EXPECT_DOUBLE_EQ(pn.inputs.points()[i].prob,
                             p1.inputs.points()[i].prob);
        }
        ASSERT_EQ(pn.outputs.size(), p1.outputs.size());
        for (std::size_t i = 0; i < p1.outputs.size(); ++i) {
            EXPECT_DOUBLE_EQ(pn.outputs.points()[i].value,
                             p1.outputs.points()[i].value);
            EXPECT_DOUBLE_EQ(pn.outputs.points()[i].prob,
                             p1.outputs.points()[i].prob);
        }
    }
}

TEST(Threads, MoreWorkersThanVectors)
{
    // Oversubscription must neither deadlock nor change the numbers.
    RefSimConfig c = smallConfig();
    c.maxVectors = 3;
    workload::Layer l = testLayer();
    c.threads = 1;
    RefSimResult r1 = simulateValueLevel(c, l);
    c.threads = 16;
    RefSimResult r16 = simulateValueLevel(c, l);
    EXPECT_DOUBLE_EQ(r16.totalPj(), r1.totalPj());
}

TEST(Threads, InvalidInputsAreFatal)
{
    workload::Layer l = testLayer();
    RefSimConfig c = smallConfig();
    c.threads = 0;
    EXPECT_THROW(simulateValueLevel(c, l), FatalError);
    c = smallConfig();
    c.maxVectors = -1;
    EXPECT_THROW(simulateValueLevel(c, l), FatalError);
    c = smallConfig();
    c.seed = 0;
    EXPECT_THROW(simulateValueLevel(c, l), FatalError);
}

TEST(InputBits, MoreBitsMoreEnergy)
{
    RefSimConfig c = smallConfig();
    workload::Layer l = testLayer();
    c.inputBits = 4;
    double e4 = simulateValueLevel(c, l).totalPj();
    c.inputBits = 8;
    double e8 = simulateValueLevel(c, l).totalPj();
    // Bit-serial: 8b inputs take ~2x the array activations of 4b.
    EXPECT_GT(e8, 1.5 * e4);
}

class AdcBitsSweep : public ::testing::TestWithParam<int>
{};

TEST_P(AdcBitsSweep, AdcEnergyGrowsWithResolution)
{
    RefSimConfig c = smallConfig();
    c.adcBits = GetParam();
    RefSimResult r = simulateValueLevel(c, testLayer());
    EXPECT_GT(r.adcPj, 0.0);
    static double last = 0.0;
    if (GetParam() == 2)
        last = 0.0;
    EXPECT_GT(r.adcPj, last);
    last = r.adcPj;
}

INSTANTIATE_TEST_SUITE_P(Resolutions, AdcBitsSweep,
                         ::testing::Values(2, 4, 6, 8, 10));

} // namespace
} // namespace cimloop::refsim
