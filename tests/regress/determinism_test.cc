/**
 * Seed/thread-sweep determinism: one workload evaluated at --threads
 * 1/2/8 for seeds {1,2,3} must produce a byte-identical metrics-JSON
 * counters block (span timings are excluded by construction — they
 * live in a separate block). Table-driven over the engine, refsim, and
 * faults paths.
 *
 * This is the load-bearing guarantee behind the golden-metrics harness
 * and behind every "bit-identical at any --threads" claim the previous
 * PRs made: if a counter is bumped from a scheduling-dependent place
 * (e.g. a cache miss counted by a losing racer), this test fails.
 */
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "regress_util.hh"

namespace cimloop::regress {
namespace {

struct Scenario
{
    const char* name;
    std::vector<std::string> args; // without --seed/--threads/--metrics
};

/** Writes the sweep spec the dse scenario runs (includes a design that
 *  fails keep-going, so the diagnostic path is in the sweep too). */
std::string
sweepSpecPath()
{
    static const std::string path = [] {
        const std::string p = "/tmp/cimloop_det_sweep.yaml";
        std::ofstream out(p);
        out << "sweep:\n"
               "  name: det\n"
               "  network: mvm\n"
               "  mappings: 8\n"
               "  scaled_adc: true\n"
               "  axes:\n"
               "    - field: array\n"
               "      values: [64, 128, 4096]\n"
               "    - field: dac_bits\n"
               "      values: [1, 8]\n";
        return p;
    }();
    return path;
}

/** Writes the fixed layout spec the engine_layout scenario pins. */
std::string
layoutSpecPath()
{
    static const std::string path = [] {
        const std::string p = "/tmp/cimloop_det_layout.yaml";
        std::ofstream out(p);
        out << "layout:\n"
               "  name: banked4\n"
               "  nodes:\n"
               "    - node: buffer\n"
               "      tensors:\n"
               "        - tensor: Inputs\n"
               "          banks: 4\n"
               "        - tensor: Outputs\n"
               "          banks: 4\n";
        return p;
    }();
    return path;
}

std::vector<Scenario>
scenarios()
{
    return {
        {"engine",
         {"--macro", "base", "--network", "mvm", "--mappings", "24"}},
        {"engine_layout",
         {"--macro", "base", "--network", "mvm", "--mappings", "24",
          "--layout", layoutSpecPath()}},
        {"engine_cosearch",
         {"--macro", "base", "--network", "mvm", "--mappings", "24",
          "--objective", "delay", "--layout-search"}},
        {"engine_faults",
         {"--macro", "base", "--network", "mvm", "--mappings", "24",
          "--fault-stuck-rate", "0.02", "--fault-sigma", "0.1"}},
        {"refsim",
         {"--refsim", "--network", "mvm", "--refsim-vectors", "4"}},
        {"refsim_faults",
         {"--refsim", "--network", "mvm", "--refsim-vectors", "4",
          "--fault-stuck-rate", "0.05", "--fault-sigma", "0.2"}},
        {"sweep", {"--sweep", sweepSpecPath()}},
    };
}

TEST(Determinism, CountersByteIdenticalAcrossThreadSweep)
{
    for (const Scenario& sc : scenarios()) {
        for (const char* seed : {"1", "2", "3"}) {
            std::string reference;
            for (const char* threads : {"1", "2", "8"}) {
                std::vector<std::string> args = sc.args;
                args.insert(args.end(), {"--seed", seed, "--threads",
                                         threads});
                CliRun run = runCliWithMetrics(
                    args, std::string("det_") + sc.name + "_s" + seed +
                              "_t" + threads);
                ASSERT_EQ(run.rc, 0)
                    << sc.name << " seed " << seed << " threads "
                    << threads << ": " << run.err;
                ASSERT_FALSE(run.counters.empty())
                    << sc.name << " seed " << seed << " threads "
                    << threads;
                if (reference.empty()) {
                    reference = run.counters;
                } else {
                    EXPECT_EQ(run.counters, reference)
                        << sc.name << " seed " << seed << " threads "
                        << threads
                        << ": counters depend on thread count";
                }
            }
        }
    }
}

TEST(Determinism, RepeatRunsAreByteIdentical)
{
    // Same seed, same threads, run twice in one process: the per-run
    // reset (obs counters + per-action cache) must make the second run
    // indistinguishable from the first.
    const Scenario sc = scenarios()[0];
    std::string first;
    for (int rep = 0; rep < 2; ++rep) {
        std::vector<std::string> args = sc.args;
        args.insert(args.end(), {"--seed", "1", "--threads", "2"});
        CliRun run = runCliWithMetrics(
            args, "det_repeat_" + std::to_string(rep));
        ASSERT_EQ(run.rc, 0) << run.err;
        if (rep == 0)
            first = run.counters;
        else
            EXPECT_EQ(run.counters, first)
                << "second in-process run differs from the first";
    }
}

TEST(Determinism, SeedsActuallyChangeTheSearch)
{
    // Sanity that the oracle is sensitive: different seeds draw
    // different mapping samples, so at least one search counter should
    // differ between seeds (if they never did, the determinism sweep
    // above would be vacuous).
    const Scenario sc = scenarios()[0];
    std::vector<std::string> counters;
    for (const char* seed : {"1", "2", "3"}) {
        std::vector<std::string> args = sc.args;
        args.insert(args.end(), {"--seed", seed, "--threads", "1"});
        CliRun run = runCliWithMetrics(
            args, std::string("det_seed_sense_") + seed);
        ASSERT_EQ(run.rc, 0) << run.err;
        counters.push_back(run.counters);
    }
    EXPECT_FALSE(counters[0] == counters[1] &&
                 counters[1] == counters[2])
        << "three seeds produced identical counters; the regression "
           "oracle has no seed sensitivity";
}

} // namespace
} // namespace cimloop::regress
