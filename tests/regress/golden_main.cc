/**
 * Custom gtest main for the regression binary: recognizes
 * --update-golden, which switches the golden-metrics tests from
 * comparing against the checked-in files under tests/regress/golden/
 * to regenerating them in place (see metrics_golden_test.cc).
 */
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace cimloop::regress {
bool g_update_golden = false;
}

int
main(int argc, char** argv)
{
    std::vector<char*> keep;
    keep.reserve(static_cast<std::size_t>(argc) + 1);
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--update-golden") == 0)
            cimloop::regress::g_update_golden = true;
        else
            keep.push_back(argv[i]);
    }
    keep.push_back(nullptr);
    int kept = static_cast<int>(keep.size()) - 1;
    ::testing::InitGoogleTest(&kept, keep.data());
    return RUN_ALL_TESTS();
}
