/**
 * Golden regression suite: pins the headline reproduction results the
 * benches report (deterministic seeds), so model changes that silently
 * break a paper claim fail CI rather than ship. Bands are deliberately
 * loose — they protect the *shape*, not the digits.
 */
#include <gtest/gtest.h>

#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/refsim/refsim.hh"
#include "cimloop/system/system.hh"
#include "cimloop/workload/networks.hh"

namespace cimloop {
namespace {

using engine::searchMappings;

TEST(Golden, MacroCalibrationBands)
{
    struct Anchor
    {
        const char* kind;
        double published;
        double lo, hi; // modeled/published band
    };
    const Anchor anchors[] = {
        {"A", 3.0, 0.3, 3.0},
        {"B", 351.0, 0.7, 7.0},
        {"C", 148.0, 0.1, 3.0},
        {"D", 32.2, 0.4, 4.0},
    };
    for (const Anchor& a : anchors) {
        macros::MacroParams p = macros::defaultsByName(a.kind);
        engine::Arch arch = macros::macroByName(a.kind);
        workload::Layer layer =
            workload::matmulLayer("mvm", 2048, p.rows, p.cols);
        layer.network = "mvm";
        engine::PerActionTable table = engine::precompute(arch, layer);
        mapping::Mapper mapper(arch.hierarchy, table.extLayer);
        engine::Evaluation ev =
            engine::evaluate(arch, table, mapper.greedy());
        double ratio = macros::macroTopsPerWatt(arch, ev) / a.published;
        EXPECT_GT(ratio, a.lo) << "Macro " << a.kind;
        EXPECT_LT(ratio, a.hi) << "Macro " << a.kind;
    }
}

TEST(Golden, Fig2aCrossover)
{
    // Macro optimum smaller than system optimum on ResNet18.
    workload::Network net = workload::resnet18();
    auto energies = [&](std::int64_t n) {
        macros::MacroParams mp = macros::baseDefaults();
        mp.rows = n;
        mp.cols = n;
        mp.adcBits = macros::scaledAdcBits(n);
        double macro = engine::evaluateNetwork(macros::baseMacro(mp), net,
                                               100, 1)
                           .energyPj;
        system::SystemParams sp;
        sp.macroKind = "base";
        sp.macro = mp;
        sp.numMacros = 4;
        sp.policy = system::WeightPolicy::OffChip;
        double sys = engine::evaluateNetwork(system::buildSystem(sp), net,
                                             100, 1)
                         .energyPj;
        return std::pair{macro, sys};
    };
    auto [m256, s256] = energies(256);
    auto [m1024, s1024] = energies(1024);
    EXPECT_LT(m256, m1024);
    EXPECT_LT(s1024, s256);
}

TEST(Golden, Fig11ValueSwing)
{
    // Macro B data-value swing stays in the paper's neighbourhood.
    engine::Arch arch = macros::macroB();
    macros::MacroParams p = macros::macroBDefaults();
    workload::Layer layer =
        workload::matmulLayer("mvm", 2048, p.rows, p.cols);
    layer.network = "mvm";
    auto macroPj = [&](double level) {
        dist::OperandProfile prof;
        std::int64_t half = 8;
        prof.inputs = dist::Pmf::quantizedGaussian(level * 7, 0.6, 0, 7);
        prof.weights =
            dist::Pmf::quantizedGaussian(level * 7, 0.6, -half, 7);
        prof.outputs =
            dist::Pmf::quantizedGaussian(0.0, 2.6, -half, 7);
        engine::PerActionTable table =
            engine::precompute(arch, layer, &prof);
        mapping::Mapper mapper(arch.hierarchy, table.extLayer);
        engine::Evaluation ev =
            engine::evaluate(arch, table, mapper.greedy());
        return macros::macroOnlyEnergyPj(arch, ev);
    };
    double swing = macroPj(0.95) / macroPj(0.05);
    EXPECT_GT(swing, 1.5); // paper: up to 2.3x
    EXPECT_LT(swing, 4.0);
}

TEST(Golden, Fig12ThreeColumnReuseWinsOnResNet)
{
    workload::Network net = workload::resnet18();
    auto perMac = [&](int reuse) {
        macros::MacroParams p = macros::macroADefaults();
        p.outputReuseCols = reuse;
        engine::Arch arch = macros::macroA(p);
        engine::NetworkEvaluation ev =
            engine::evaluateNetwork(arch, net, 120, 1);
        return ev.energyPerMacPj();
    };
    double r3 = perMac(3);
    EXPECT_LT(r3, perMac(1));
    EXPECT_LT(r3, perMac(2));
    EXPECT_LT(r3, perMac(4));
}

TEST(Golden, Fig15ScenarioOrdering)
{
    workload::Layer layer = workload::resnet18().layers[8];
    auto total = [&](system::WeightPolicy policy) {
        system::SystemParams p;
        p.macroKind = "D";
        p.numMacros = 8;
        p.policy = policy;
        engine::Arch arch = system::buildSystem(p);
        return searchMappings(arch, layer, 100, 1).best.energyPj;
    };
    double off = total(system::WeightPolicy::OffChip);
    double ws = total(system::WeightPolicy::WeightStationary);
    double fused = total(system::WeightPolicy::Fused);
    EXPECT_GT(off, ws);
    EXPECT_GT(ws, fused);
}

TEST(Golden, Fig13EightOperandAdderNeverWins)
{
    workload::Layer base_layer;
    auto topsPerMm2 = [&](int operands, int weight_bits) {
        macros::MacroParams p = macros::macroBDefaults();
        p.adderOperands = operands;
        p.weightBits = weight_bits;
        engine::Arch arch = macros::macroB(p);
        workload::Layer layer =
            workload::matmulLayer("mvm", 2048, p.rows, p.cols);
        layer.network = "mvm";
        engine::PerActionTable table = engine::precompute(arch, layer);
        mapping::Mapper mapper(arch.hierarchy, table.extLayer);
        return engine::evaluate(arch, table, mapper.greedy()).topsPerMm2();
    };
    for (int wb : {1, 2, 4, 8}) {
        double eight = topsPerMm2(8, wb);
        double best_other = std::max({topsPerMm2(1, wb), topsPerMm2(2, wb),
                                      topsPerMm2(4, wb)});
        EXPECT_LT(eight, best_other) << wb << "b weights";
    }
}

TEST(Golden, Fig16WinnerFlipsWithPrecision)
{
    auto tops = [&](const char* kind, int bits) {
        macros::MacroParams p = macros::defaultsByName(kind);
        p.technologyNm = 7.0;
        p.adcBits = 8;
        p.inputBits = bits;
        p.weightBits = bits;
        if (std::string(kind) == "B")
            p.adderOperands = std::min(4, std::max(1, bits));
        engine::Arch arch = std::string(kind) == "A" ? macros::macroA(p)
                          : std::string(kind) == "B" ? macros::macroB(p)
                                                     : macros::macroD(p);
        workload::Layer layer =
            workload::matmulLayer("mvm", 2048, p.rows, p.cols);
        layer.network = "mvm";
        engine::SearchResult sr = engine::searchMappings(arch, layer, 60, 1);
        return macros::macroTopsPerWatt(arch, sr.best);
    };
    // 1b operands: the bit-scalable Macro A wins.
    double a1 = tops("A", 1);
    EXPECT_GT(a1, tops("B", 1));
    EXPECT_GT(a1, tops("D", 1));
    // 8b operands: a multi-bit analog macro (B or D) wins.
    double a8 = tops("A", 8);
    EXPECT_GT(std::max(tops("B", 8), tops("D", 8)), a8);
}

TEST(Golden, Fig6AccuracyGap)
{
    refsim::RefSimConfig cfg;
    cfg.rows = 128;
    cfg.cols = 128;
    cfg.maxVectors = 24;
    workload::Network net = workload::resnet18();
    double stat = 0.0, fixed = 0.0;
    std::vector<dist::OperandProfile> profiles;
    std::vector<workload::Layer> layers;
    std::vector<double> truths;
    for (int idx : {5, 11, 17}) {
        workload::Layer l = net.layers[idx];
        l.dims[workload::dimIndex(workload::Dim::P)] = 5;
        l.dims[workload::dimIndex(workload::Dim::Q)] = 5;
        dist::OperandProfile prof;
        truths.push_back(refsim::simulateValueLevel(cfg, l, &prof)
                             .totalPj());
        profiles.push_back(prof);
        layers.push_back(l);
    }
    dist::OperandProfile avg = refsim::averageProfiles(profiles);
    for (std::size_t i = 0; i < layers.size(); ++i) {
        stat += std::abs(refsim::estimateStatistical(cfg, layers[i],
                                                     profiles[i])
                             .totalPj() -
                         truths[i]) /
                truths[i];
        fixed += std::abs(refsim::estimateFixedEnergy(cfg, layers[i], avg)
                              .totalPj() -
                          truths[i]) /
                 truths[i];
    }
    EXPECT_LT(stat / 3.0, 0.05);       // statistical: a few percent
    EXPECT_GT(fixed / 3.0, 2.0 * stat / 3.0); // fixed-energy much worse
}

} // namespace
} // namespace cimloop
