/**
 * Golden-metrics harness: each scenario runs the CLI in-process with
 * --metrics and diffs the run's observability counters (exact) and its
 * headline result figures (tight relative tolerance) against a golden
 * JSON checked in under tests/regress/golden/.
 *
 * Counters are deterministic at fixed seed for any --threads, so they
 * pin pipeline *behavior* — which kernel path dispatched, how many
 * mappings were really evaluated, how many cache misses a network costs
 * — without any timing flakiness. Energies get a small tolerance
 * because libm (exp/erfc) may differ in the last ulp across toolchains.
 *
 * Regenerating goldens after an intentional behavior change:
 *
 *     cmake --build build -j --target test_regress
 *     ./build/tests/test_regress --update-golden \
 *         --gtest_filter='GoldenMetrics.*'
 *
 * then review the diff of tests/regress/golden/*.json like any other
 * code change: every counter delta should be explainable by the change
 * you made.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "regress_util.hh"

namespace cimloop::regress {

extern bool g_update_golden; // set by golden_main.cc

namespace {

std::string
goldenPath(const std::string& name)
{
    return std::string(CIMLOOP_GOLDEN_DIR) + "/" + name + ".json";
}

/** Flat golden document: "counter:NAME" -> exact integer as string,
 *  "result:NAME" -> double rendered at full precision. */
std::map<std::string, std::string>
loadGolden(const std::string& name)
{
    std::map<std::string, std::string> out;
    std::ifstream in(goldenPath(name));
    std::string line;
    while (std::getline(in, line)) {
        std::size_t q1 = line.find('"');
        std::size_t q2 = line.find('"', q1 + 1);
        std::size_t colon = line.find(':', q2);
        if (q1 == std::string::npos || q2 == std::string::npos ||
            colon == std::string::npos)
            continue;
        std::string value = line.substr(colon + 1);
        while (!value.empty() &&
               (value.back() == ',' || value.back() == ' ' ||
                value.back() == '\r'))
            value.pop_back();
        while (!value.empty() && value.front() == ' ')
            value.erase(value.begin());
        out[line.substr(q1 + 1, q2 - q1 - 1)] = value;
    }
    return out;
}

void
saveGolden(const std::string& name,
           const std::map<std::string, std::string>& doc)
{
    std::ofstream out(goldenPath(name));
    ASSERT_TRUE(out) << "cannot write " << goldenPath(name);
    out << "{\n";
    bool first = true;
    for (const auto& [key, value] : doc) {
        if (!first)
            out << ",\n";
        first = false;
        out << "  \"" << key << "\": " << value;
    }
    out << "\n}\n";
}

std::string
formatDouble(double v)
{
    std::ostringstream ss;
    ss.precision(17);
    ss << v;
    return ss.str();
}

/**
 * Runs one scenario, folds counters + results into a flat document,
 * and either regenerates the golden (--update-golden) or diffs
 * against it: counters exactly, results at @p rel_tol.
 */
void
checkScenario(const std::string& name,
              const std::map<std::string, double>& results,
              const CliRun& run, double rel_tol = 2e-5)
{
    ASSERT_EQ(run.rc, 0) << run.err;
    ASSERT_FALSE(run.counters.empty()) << "no counters block captured";

    std::map<std::string, std::string> doc;
    for (const auto& [counter, value] : parseCounters(run.counters))
        doc["counter:" + counter] = std::to_string(value);
    for (const auto& [key, value] : results)
        doc["result:" + key] = formatDouble(value);

    if (g_update_golden) {
        saveGolden(name, doc);
        SUCCEED() << "regenerated " << goldenPath(name);
        return;
    }

    std::map<std::string, std::string> golden = loadGolden(name);
    ASSERT_FALSE(golden.empty())
        << goldenPath(name) << " missing or empty; regenerate with "
        << "./build/tests/test_regress --update-golden";

    // Exact counter equality, both directions: a new counter appearing
    // for this scenario is as much a behavior change as one drifting.
    for (const auto& [key, value] : golden) {
        auto it = doc.find(key);
        ASSERT_NE(it, doc.end()) << name << ": golden key '" << key
                                 << "' missing from this run";
        if (key.rfind("counter:", 0) == 0) {
            EXPECT_EQ(it->second, value) << name << ": " << key;
        } else {
            double got = std::stod(it->second);
            double want = std::stod(value);
            EXPECT_NEAR(got, want, rel_tol * (1.0 + std::abs(want)))
                << name << ": " << key;
        }
    }
    for (const auto& [key, value] : doc) {
        EXPECT_TRUE(golden.count(key))
            << name << ": new key '" << key << "' = " << value
            << " not in golden (regenerate if intentional)";
    }
}

TEST(GoldenMetrics, EngineMvmBase)
{
    std::vector<std::string> args = {"--macro",    "base", "--network",
                                     "mvm",        "--mappings", "60",
                                     "--seed",     "1",    "--threads",
                                     "2"};
    CliRun run = runCliWithMetrics(args, "golden_engine_mvm");
    checkScenario("engine_mvm_base",
                  {{"total_energy_uj", parseTotalEnergyUj(run.out)}},
                  run);
}

TEST(GoldenMetrics, EngineResnetFaults)
{
    // Engine path with analytic fault injection and the degradation
    // report (second, fault-free evaluation) — the counters cover both.
    std::vector<std::string> args = {
        "--macro",    "base",  "--network",        "resnet18",
        "--mappings", "40",    "--seed",           "2",
        "--threads",  "2",     "--fault-stuck-rate", "0.02",
        "--fault-sigma", "0.1"};
    CliRun run = runCliWithMetrics(args, "golden_engine_resnet_faults");
    checkScenario("engine_resnet_faults",
                  {{"total_energy_uj", parseTotalEnergyUj(run.out)}},
                  run);
}

TEST(GoldenMetrics, EngineMvmCoSearch)
{
    // Layout x mapping co-search: pins the candidate count, the
    // bank-conflict cycle total, and that the search counters scale by
    // the layout enumeration exactly.
    std::vector<std::string> args = {
        "--macro",     "base",  "--network", "mvm",
        "--mappings",  "40",    "--seed",    "1",
        "--threads",   "2",     "--objective", "delay",
        "--layout-search"};
    CliRun run = runCliWithMetrics(args, "golden_engine_cosearch");
    checkScenario("engine_mvm_cosearch",
                  {{"total_energy_uj", parseTotalEnergyUj(run.out)}},
                  run);
}

TEST(GoldenMetrics, RefsimMvm)
{
    std::vector<std::string> args = {"--refsim", "--network", "mvm",
                                     "--refsim-vectors", "8", "--seed",
                                     "1"};
    CliRun run = runCliWithMetrics(args, "golden_refsim_mvm");
    checkScenario("refsim_mvm",
                  {{"mean_abs_err_pct", parseMeanAbsErrPct(run.out)}},
                  run, 0.02);
}

TEST(GoldenMetrics, RefsimMvmFaults)
{
    // Value-level fault injection: the per-cell stuck/varied counts are
    // exact functions of (fault model, layer, cell index) and pin the
    // injection pattern bit-for-bit.
    std::vector<std::string> args = {
        "--refsim",         "--network", "mvm",
        "--refsim-vectors", "6",         "--seed",
        "1",                "--fault-stuck-rate", "0.05",
        "--fault-sigma",    "0.2"};
    CliRun run = runCliWithMetrics(args, "golden_refsim_faults");
    checkScenario("refsim_mvm_faults",
                  {{"mean_abs_err_pct", parseMeanAbsErrPct(run.out)}},
                  run, 0.02);
}

TEST(GoldenMetrics, GoldenFilesAreTracked)
{
    // The harness is only a regression oracle if the goldens exist.
    for (const char* name :
         {"engine_mvm_base", "engine_resnet_faults",
          "engine_mvm_cosearch", "refsim_mvm", "refsim_mvm_faults"}) {
        if (g_update_golden)
            continue;
        std::ifstream in(goldenPath(name));
        EXPECT_TRUE(in.good()) << goldenPath(name) << " is missing";
    }
}

} // namespace
} // namespace cimloop::regress
