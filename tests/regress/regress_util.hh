#pragma once
/**
 * Shared helpers for the regression harness: run the CLI in-process with
 * --metrics=FILE, capture its output, and extract the deterministic
 * counters block from the metrics JSON.
 */
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "cimloop/cli/cli.hh"

namespace cimloop::regress {

struct CliRun
{
    int rc = -1;
    std::string out;      //!< captured stdout
    std::string err;      //!< captured stderr
    std::string counters; //!< the metrics JSON "counters" block, verbatim
};

inline std::string
readFile(const std::string& path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * The counters block between `"counters": {` and its closing `},` —
 * the byte-comparable surface (same lines scripts/metrics_regress.sh
 * extracts with sed). Span timings are intentionally left behind.
 */
inline std::string
extractCountersBlock(const std::string& metrics_json)
{
    std::size_t start = metrics_json.find("\"counters\": {");
    if (start == std::string::npos)
        return {};
    std::size_t end = metrics_json.find("\n},", start);
    if (end == std::string::npos)
        return {};
    return metrics_json.substr(start, end + 3 - start);
}

/** Parses `  "name": value` lines of a counters block into a map. */
inline std::map<std::string, unsigned long long>
parseCounters(const std::string& block)
{
    std::map<std::string, unsigned long long> out;
    std::istringstream in(block);
    std::string line;
    while (std::getline(in, line)) {
        std::size_t q1 = line.find('"');
        if (q1 == std::string::npos)
            continue;
        std::size_t q2 = line.find('"', q1 + 1);
        std::size_t colon = line.find(':', q2);
        if (q2 == std::string::npos || colon == std::string::npos)
            continue;
        std::string name = line.substr(q1 + 1, q2 - q1 - 1);
        if (name == "counters")
            continue;
        out[name] = std::stoull(line.substr(colon + 1));
    }
    return out;
}

/**
 * Runs cli::run(args + --metrics=<temp file>) and returns the exit
 * code, captured streams, and the extracted counters block. The temp
 * file is tagged to stay collision-free across tests in one binary.
 */
inline CliRun
runCliWithMetrics(std::vector<std::string> args, const std::string& tag)
{
    const std::string path = "/tmp/cimloop_metrics_" + tag + ".json";
    args.push_back("--metrics=" + path);
    std::ostringstream out, err;
    CliRun r;
    r.rc = cli::run(args, out, err);
    r.out = out.str();
    r.err = err.str();
    r.counters = extractCountersBlock(readFile(path));
    std::remove(path.c_str());
    return r;
}

/** Parses "total energy : X uJ" from engine-mode CLI output. */
inline double
parseTotalEnergyUj(const std::string& out)
{
    std::size_t pos = out.find("total energy :");
    if (pos == std::string::npos)
        return -1.0;
    return std::stod(out.substr(pos + std::string("total energy :").size()));
}

/** Parses "mean |error| : X% over" from refsim-mode CLI output. */
inline double
parseMeanAbsErrPct(const std::string& out)
{
    std::size_t pos = out.find("mean |error| :");
    if (pos == std::string::npos)
        return -1.0;
    return std::stod(out.substr(pos + std::string("mean |error| :").size()));
}

} // namespace cimloop::regress
