/**
 * Cache-economy pins for the cross-request per-action cache behind
 * `cimloop serve`: single-flight coalescing under concurrent identical
 * requests, per-client hit/miss attribution, deterministic counters,
 * and LRU eviction in pinned order under a tiny byte budget.
 */
#include "cimloop/serve/protocol.hh"

#include <gtest/gtest.h>

#include <iterator>
#include <memory>
#include <thread>
#include <vector>

#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/serve/json.hh"
#include "cimloop/workload/networks.hh"

namespace cimloop::serve {
namespace {

using engine::cachedPrecompute;
using engine::clearPerActionCache;
using engine::perActionCacheContains;
using engine::perActionCacheStats;
using engine::perActionKey;
using engine::PerActionCacheStats;
using engine::setPerActionCacheBudget;

/** Restores the unbudgeted default however the test exits — the budget
 *  is process-wide configuration and other suites rely on the strict
 *  misses==unique-keys invariant. */
struct BudgetGuard
{
    ~BudgetGuard()
    {
        setPerActionCacheBudget(0);
        clearPerActionCache();
    }
};

/**
 * N concurrent identical evaluate requests, each on its own connection
 * (ClientState), must coalesce into exactly one per-action cache miss:
 * the single-flight future makes every other request wait for the one
 * computation instead of redoing it. Per-client attribution must sum to
 * the global counters.
 */
void
runConcurrentIdenticalRequests(int request_threads)
{
    BudgetGuard guard;
    clearPerActionCache();

    ServerState server;
    server.config.defaultThreads = 1;
    const std::string request =
        "{\"id\":1,\"kind\":\"evaluate\",\"macro\":\"base\","
        "\"network\":\"mvm\",\"mappings\":6,\"seed\":2,\"threads\":" +
        std::to_string(request_threads) + "}";

    constexpr int kClients = 6;
    std::vector<std::unique_ptr<ClientState>> clients;
    std::vector<std::string> responses(kClients);
    for (int i = 0; i < kClients; ++i)
        clients.push_back(std::make_unique<ClientState>());

    std::vector<std::thread> pool;
    for (int i = 0; i < kClients; ++i) {
        pool.emplace_back([&, i] {
            CancelToken token;
            responses[static_cast<std::size_t>(i)] = handleRequestLine(
                server, *clients[static_cast<std::size_t>(i)], request,
                token);
        });
    }
    for (std::thread& t : pool)
        t.join();

    // mvm is one layer on one arch: one unique key, so exactly one
    // miss however many requests raced.
    PerActionCacheStats stats = perActionCacheStats();
    EXPECT_EQ(stats.misses, 1u)
        << "identical concurrent requests recomputed the table";
    EXPECT_EQ(stats.entries, 1u);
    EXPECT_EQ(stats.evictions, 0u);

    // Per-client attribution sums to the global counters, and every
    // client saw at least one lookup.
    std::uint64_t client_hits = 0, client_misses = 0;
    for (const auto& c : clients) {
        client_hits += c->cacheStats.cacheHits.load();
        client_misses += c->cacheStats.cacheMisses.load();
        EXPECT_GE(c->cacheStats.cacheHits.load() +
                      c->cacheStats.cacheMisses.load(),
                  1u);
    }
    EXPECT_EQ(client_hits, stats.hits);
    EXPECT_EQ(client_misses, stats.misses);

    // All responses are byte-identical successes: a warm (or shared)
    // cache changes counters, never bytes.
    for (int i = 1; i < kClients; ++i)
        EXPECT_EQ(responses[static_cast<std::size_t>(i)], responses[0]);
    EXPECT_NE(responses[0].find("\"ok\":true"), std::string::npos)
        << responses[0];
}

TEST(ServeCache, ConcurrentIdenticalRequestsOneMissAtOneThread)
{
    runConcurrentIdenticalRequests(1);
}

TEST(ServeCache, ConcurrentIdenticalRequestsOneMissAtEightThreads)
{
    runConcurrentIdenticalRequests(8);
}

TEST(ServeCache, SequentialCountersDeterministicAcrossThreadCounts)
{
    BudgetGuard guard;
    ServerState server;
    server.config.defaultThreads = 1;

    // At a fixed request, the counter pair after a cold+warm sequence
    // is a pure function of the request — for any threads value —
    // because lookups happen at deterministic points in the pipeline.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> observed;
    for (int threads : {1, 8}) {
        clearPerActionCache();
        ClientState client;
        const std::string request =
            "{\"id\":1,\"kind\":\"evaluate\",\"macro\":\"base\","
            "\"network\":\"mvm\",\"mappings\":6,\"seed\":2,"
            "\"threads\":" +
            std::to_string(threads) + "}";
        CancelToken token;
        handleRequestLine(server, client, request, token);
        handleRequestLine(server, client, request, token);
        PerActionCacheStats stats = perActionCacheStats();
        EXPECT_EQ(stats.misses, 1u) << "threads=" << threads;
        observed.emplace_back(client.cacheStats.cacheHits.load(),
                              client.cacheStats.cacheMisses.load());
        EXPECT_EQ(client.cacheStats.cacheMisses.load(), stats.misses);
        EXPECT_EQ(client.cacheStats.cacheHits.load(), stats.hits);
    }
    // Same lookup pattern whether the request ran on 1 or 8 workers.
    EXPECT_EQ(observed[0], observed[1]);
}

TEST(ServeCache, LruEvictsInPinnedOrderAtTinyBudget)
{
    BudgetGuard guard;
    clearPerActionCache();

    // Exactly-representable voltages with same-length spellings keep
    // the three cache keys (and so the three entry charges) the same
    // size, making the eviction arithmetic exact.
    engine::Arch nominal = macros::baseMacro();
    nominal.supplyVoltage = 0.375;
    engine::Arch low = nominal;
    low.supplyVoltage = 0.625;
    engine::Arch high = nominal;
    high.supplyVoltage = 0.875;
    const workload::Layer layer = workload::resnet18().layers[5];

    const std::string key_nominal = perActionKey(nominal, layer);
    const std::string key_low = perActionKey(low, layer);
    const std::string key_high = perActionKey(high, layer);

    cachedPrecompute(nominal, layer);
    cachedPrecompute(low, layer);
    const std::uint64_t two_entries = perActionCacheStats().bytes;

    // Budget = exactly the current two entries: nothing evicts yet.
    setPerActionCacheBudget(two_entries);
    EXPECT_TRUE(perActionCacheContains(key_nominal));
    EXPECT_TRUE(perActionCacheContains(key_low));
    EXPECT_EQ(perActionCacheStats().evictions, 0u);

    // Refresh `nominal`, then insert a third entry: `low` is now the
    // least recently used and must be the one evicted.
    cachedPrecompute(nominal, layer);
    cachedPrecompute(high, layer);
    EXPECT_TRUE(perActionCacheContains(key_nominal));
    EXPECT_FALSE(perActionCacheContains(key_low));
    EXPECT_TRUE(perActionCacheContains(key_high));
    EXPECT_EQ(perActionCacheStats().evictions, 1u);
    EXPECT_LE(perActionCacheStats().bytes, two_entries);

    // Re-requesting the evicted key is a fresh miss and pushes out the
    // next LRU victim (`nominal`, untouched since before `high`).
    const std::uint64_t misses_before = perActionCacheStats().misses;
    cachedPrecompute(low, layer);
    EXPECT_EQ(perActionCacheStats().misses, misses_before + 1);
    EXPECT_FALSE(perActionCacheContains(key_nominal));
    EXPECT_TRUE(perActionCacheContains(key_low));
    EXPECT_TRUE(perActionCacheContains(key_high));
    EXPECT_EQ(perActionCacheStats().evictions, 2u);
}

TEST(ServeCache, BudgetZeroKeepsEverything)
{
    BudgetGuard guard;
    clearPerActionCache();
    engine::Arch arch = macros::baseMacro();
    const workload::Layer layer = workload::resnet18().layers[5];
    cachedPrecompute(arch, layer);
    engine::Arch other = arch;
    other.supplyVoltage = 0.72;
    cachedPrecompute(other, layer);
    PerActionCacheStats stats = perActionCacheStats();
    EXPECT_EQ(stats.entries, 2u);
    EXPECT_EQ(stats.evictions, 0u);
    EXPECT_EQ(stats.budgetBytes, 0u);
}

} // namespace
} // namespace cimloop::serve
