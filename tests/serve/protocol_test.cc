/**
 * In-process tests for the `cimloop serve` protocol: request/response
 * shape, structured errors, byte-identity with the one-shot CLI, and a
 * randomized robustness (fuzz) suite asserting that no malformed line
 * can kill the handler. Socket-free — the black-box twin of this file
 * is tests/tools/serve_e2e.sh.
 */
#include "cimloop/serve/protocol.hh"

#include <gtest/gtest.h>

#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "cimloop/cli/cli.hh"
#include "cimloop/common/util.hh"
#include "cimloop/engine/evaluate.hh"
#include "cimloop/serve/json.hh"

namespace cimloop::serve {
namespace {

/** A fresh single-threaded server/client pair for one test. */
struct Harness
{
    ServerState server;
    ClientState client;

    Harness()
    {
        server.config.defaultThreads = 1;
        engine::clearPerActionCache();
    }
    ~Harness() { engine::clearPerActionCache(); }

    std::string call(const std::string& line)
    {
        CancelToken token;
        return handleRequestLine(server, client, line, token);
    }
};

/** Parses a response line, asserting it is a one-line JSON object. */
JsonValue
parseResponse(const std::string& resp)
{
    EXPECT_EQ(resp.find('\n'), std::string::npos)
        << "response must be a single line";
    std::string error;
    std::optional<JsonValue> doc = parseJson(resp, &error);
    EXPECT_TRUE(doc.has_value()) << error << " in: " << resp;
    EXPECT_TRUE(doc && doc->isObject()) << resp;
    return doc ? *doc : JsonValue{};
}

/** The error.kind member of a failed response ("" when absent). */
std::string
errorKind(const JsonValue& doc)
{
    const JsonValue* err = doc.get("error");
    if (!err || !err->isObject())
        return "";
    const JsonValue* kind = err->get("kind");
    return kind && kind->isString() ? kind->text : "";
}

bool
okField(const JsonValue& doc)
{
    const JsonValue* ok = doc.get("ok");
    return ok && ok->isBool() && ok->boolean;
}

TEST(Protocol, PingRoundTrip)
{
    Harness h;
    EXPECT_EQ(h.call("{\"id\":1,\"kind\":\"ping\"}"),
              "{\"id\":1,\"ok\":true,\"result\":{\"pong\":true,"
              "\"protocol\":1}}");
}

TEST(Protocol, IdEchoIsByteExact)
{
    Harness h;
    // Far past 2^64: a double would round this; the raw token must not.
    const std::string huge = "99999999999999999999999999999999";
    std::string resp =
        h.call("{\"id\":" + huge + ",\"kind\":\"ping\"}");
    EXPECT_NE(resp.find("\"id\":" + huge + ","), std::string::npos)
        << resp;

    // Trailing zeros and exponent spelling survive too.
    resp = h.call("{\"id\":1.50e2,\"kind\":\"ping\"}");
    EXPECT_NE(resp.find("\"id\":1.50e2,"), std::string::npos) << resp;

    // String ids round-trip; a request without an id echoes null.
    resp = h.call("{\"id\":\"req-7\",\"kind\":\"ping\"}");
    EXPECT_NE(resp.find("\"id\":\"req-7\","), std::string::npos);
    resp = h.call("{\"kind\":\"ping\"}");
    EXPECT_NE(resp.find("\"id\":null,"), std::string::npos);
}

TEST(Protocol, StructuredErrorTaxonomy)
{
    Harness h;
    struct Case
    {
        const char* line;
        const char* kind;
    };
    const Case cases[] = {
        {"not json at all", "parse"},
        {"{\"kind\":\"ping\"} trailing", "parse"},
        {"{\"kind\":\"ping\"", "parse"},
        {"[1,2,3]", "protocol"},
        {"42", "protocol"},
        {"{\"id\":1}", "protocol"},
        {"{\"id\":1,\"kind\":7}", "protocol"},
        {"{\"id\":1,\"kind\":\"bogus\"}", "protocol"},
        {"{\"id\":1,\"kind\":\"ping\",\"extra\":true}", "protocol"},
        {"{\"id\":1,\"kind\":\"evaluate\",\"mappings\":\"ten\"}",
         "protocol"},
        {"{\"id\":1,\"kind\":\"evaluate\",\"no_such_field\":1}",
         "protocol"},
        {"{\"id\":1,\"kind\":\"sweep\",\"threads\":2}", "protocol"},
        // Valid shape, rejected by the CLI's own flag validation.
        {"{\"id\":1,\"kind\":\"evaluate\",\"macro\":\"base\","
         "\"network\":\"mvm\",\"mappings\":-3}",
         "usage"},
        {"{\"id\":1,\"kind\":\"evaluate\",\"macro\":\"base\","
         "\"network\":\"mvm\",\"objective\":\"vibes\"}",
         "usage"},
    };
    for (const Case& c : cases) {
        JsonValue doc = parseResponse(h.call(c.line));
        EXPECT_FALSE(okField(doc)) << c.line;
        EXPECT_EQ(errorKind(doc), c.kind) << c.line;
    }
    // Every rejection was counted, and the handler is still healthy.
    EXPECT_EQ(h.server.errorsTotal.load(), std::size(cases));
    EXPECT_EQ(h.client.errors.load(), std::size(cases));
    EXPECT_TRUE(okField(parseResponse(h.call("{\"kind\":\"ping\"}"))));
}

TEST(Protocol, OversizedLineIsRejectedNotFatal)
{
    Harness h;
    h.server.config.maxLineBytes = 64;
    std::string big = "{\"kind\":\"ping\",\"pad\":\"";
    big.append(200, 'x');
    big += "\"}";
    JsonValue doc = parseResponse(h.call(big));
    EXPECT_FALSE(okField(doc));
    EXPECT_EQ(errorKind(doc), "protocol");
    EXPECT_TRUE(okField(parseResponse(h.call("{\"kind\":\"ping\"}"))));
}

TEST(Protocol, ShutdownFlipsTheFlag)
{
    Harness h;
    EXPECT_FALSE(h.server.shutdownRequested.load());
    JsonValue doc = parseResponse(h.call("{\"id\":9,\"kind\":\"shutdown\"}"));
    EXPECT_TRUE(okField(doc));
    EXPECT_TRUE(h.server.shutdownRequested.load());
}

TEST(Protocol, MetricsShape)
{
    Harness h;
    JsonValue doc = parseResponse(h.call("{\"id\":2,\"kind\":\"metrics\"}"));
    ASSERT_TRUE(okField(doc));
    const JsonValue* result = doc.get("result");
    ASSERT_TRUE(result && result->isObject());
    for (const char* member : {"server", "client", "cache", "counters"}) {
        const JsonValue* m = result->get(member);
        EXPECT_TRUE(m && m->isObject()) << member;
    }
    const JsonValue* cache = result->get("cache");
    ASSERT_TRUE(cache);
    for (const char* member :
         {"hits", "misses", "entries", "bytes", "evictions",
          "budget_bytes"}) {
        const JsonValue* m = cache->get(member);
        EXPECT_TRUE(m && m->isNumber()) << member;
    }
    const JsonValue* client = result->get("client");
    ASSERT_TRUE(client);
    const JsonValue* requests = client->get("requests");
    ASSERT_TRUE(requests && requests->isNumber());
    EXPECT_EQ(requests->number, 1.0); // this very request
}

// ---------------------------------------------------------------------
// Executed requests: the determinism contract against the one-shot CLI.
// ---------------------------------------------------------------------

/** Runs the one-shot CLI in-process and returns (exit, stdout). */
std::pair<int, std::string>
oneShot(const std::vector<std::string>& args)
{
    std::ostringstream out, err;
    int rc = cli::run(args, out, err);
    return {rc, out.str()};
}

TEST(ServeExec, EvaluateMatchesOneShotCliByteForByte)
{
    for (const char* threads : {"1", "8"}) {
        Harness h;
        std::string req =
            std::string("{\"id\":1,\"kind\":\"evaluate\","
                        "\"macro\":\"base\",\"network\":\"mvm\","
                        "\"mappings\":16,\"seed\":5,\"threads\":") +
            threads + "}";
        JsonValue cold = parseResponse(h.call(req));
        JsonValue warm = parseResponse(h.call(req)); // cache is hot now

        auto [rc, expected] = oneShot({"--macro", "base", "--network",
                                       "mvm", "--mappings", "16",
                                       "--seed", "5", "--threads",
                                       threads});
        ASSERT_EQ(rc, 0);
        for (const JsonValue* doc : {&cold, &warm}) {
            ASSERT_TRUE(okField(*doc));
            const JsonValue* exit_code = doc->get("exit");
            ASSERT_TRUE(exit_code && exit_code->isNumber());
            EXPECT_EQ(exit_code->number, 0.0);
            const JsonValue* out = doc->get("stdout");
            ASSERT_TRUE(out && out->isString());
            EXPECT_EQ(out->text, expected)
                << "daemon stdout diverged at threads=" << threads;
        }
    }
}

TEST(ServeExec, LayoutEvaluateMatchesOneShotCliByteForByte)
{
    // The layout / layout_search request fields ride the same
    // field-to-argv translation as every other flag, so a co-search
    // evaluate through the daemon is byte-identical to the one-shot CLI.
    Harness h;
    std::string req =
        "{\"id\":1,\"kind\":\"evaluate\",\"macro\":\"base\","
        "\"network\":\"mvm\",\"mappings\":12,\"seed\":5,"
        "\"objective\":\"delay\",\"layout_search\":true,\"threads\":2}";
    JsonValue doc = parseResponse(h.call(req));
    auto [rc, expected] =
        oneShot({"--macro", "base", "--network", "mvm", "--mappings",
                 "12", "--seed", "5", "--objective", "delay",
                 "--layout-search", "--threads", "2"});
    ASSERT_EQ(rc, 0);
    ASSERT_TRUE(okField(doc));
    const JsonValue* out = doc.get("stdout");
    ASSERT_TRUE(out && out->isString());
    EXPECT_EQ(out->text, expected);

    // A fixed layout file travels through the "layout" string field.
    const std::string layout_path =
        ::testing::TempDir() + "/serve_layout.yaml";
    {
        std::ofstream spec(layout_path);
        spec << "layout:\n"
                "  name: banked4\n"
                "  nodes:\n"
                "    - node: buffer\n"
                "      tensors:\n"
                "        - tensor: Inputs\n"
                "          banks: 4\n";
    }
    JsonValue fixed = parseResponse(
        h.call("{\"id\":2,\"kind\":\"evaluate\",\"macro\":\"base\","
               "\"network\":\"mvm\",\"mappings\":12,\"seed\":5,"
               "\"layout\":\"" +
               layout_path + "\",\"threads\":2}"));
    auto [rc2, expected2] =
        oneShot({"--macro", "base", "--network", "mvm", "--mappings",
                 "12", "--seed", "5", "--layout", layout_path,
                 "--threads", "2"});
    ASSERT_EQ(rc2, 0);
    ASSERT_TRUE(okField(fixed));
    const JsonValue* out2 = fixed.get("stdout");
    ASSERT_TRUE(out2 && out2->isString());
    EXPECT_EQ(out2->text, expected2);
}

TEST(ServeExec, SweepMatchesOneShotCliByteForByte)
{
    const std::string spec_path =
        ::testing::TempDir() + "/serve_tiny_sweep.yaml";
    {
        std::ofstream spec(spec_path);
        spec << "sweep:\n"
                "  name: serve-tiny\n"
                "  macro: base\n"
                "  network: mvm\n"
                "  seed: 3\n"
                "  axes:\n"
                "    - field: dac_bits\n"
                "      values: [1, 2]\n"
                "    - field: mappings\n"
                "      values: [5]\n";
    }
    Harness h;
    JsonValue doc = parseResponse(
        h.call("{\"id\":1,\"kind\":\"sweep\",\"sweep\":\"" + spec_path +
               "\",\"threads\":2}"));
    auto [rc, expected] =
        oneShot({"--sweep", spec_path, "--threads", "2"});
    ASSERT_EQ(rc, 0);
    ASSERT_TRUE(okField(doc));
    const JsonValue* out = doc.get("stdout");
    ASSERT_TRUE(out && out->isString());
    EXPECT_EQ(out->text, expected);
}

TEST(ServeExec, TimeoutMapsToDeadlineError)
{
    Harness h;
    JsonValue doc = parseResponse(
        h.call("{\"id\":1,\"kind\":\"evaluate\",\"macro\":\"base\","
               "\"network\":\"mvm\",\"mappings\":500,"
               "\"timeout_s\":0.000001}"));
    EXPECT_FALSE(okField(doc));
    const JsonValue* exit_code = doc.get("exit");
    ASSERT_TRUE(exit_code && exit_code->isNumber());
    EXPECT_EQ(exit_code->number, 124.0);
    EXPECT_EQ(errorKind(doc), "deadline");
}

TEST(ServeExec, DisconnectCancelMapsToCancelledError)
{
    Harness h;
    CancelToken token;
    token.cancel(CancelReason::User); // what the socket layer does
    std::string resp = handleRequestLine(
        h.server, h.client,
        "{\"id\":1,\"kind\":\"evaluate\",\"macro\":\"base\","
        "\"network\":\"mvm\",\"mappings\":500}",
        token);
    JsonValue doc = parseResponse(resp);
    EXPECT_FALSE(okField(doc));
    EXPECT_EQ(errorKind(doc), "cancelled");
}

TEST(ServeExec, ExecutionFailureIsStructuredAndSurvivable)
{
    Harness h;
    JsonValue doc = parseResponse(
        h.call("{\"id\":1,\"kind\":\"evaluate\",\"network\":\"mvm\","
               "\"arch\":\"/nonexistent/arch.yaml\"}"));
    EXPECT_FALSE(okField(doc));
    const JsonValue* exit_code = doc.get("exit");
    ASSERT_TRUE(exit_code && exit_code->isNumber());
    EXPECT_EQ(exit_code->number, 1.0);
    EXPECT_EQ(errorKind(doc), "fatal");
    const JsonValue* message = doc.get("error")->get("message");
    ASSERT_TRUE(message && message->isString());
    EXPECT_FALSE(message->text.empty());
    // The daemon keeps serving after a failed evaluation.
    EXPECT_TRUE(okField(parseResponse(h.call("{\"kind\":\"ping\"}"))));
}

// ---------------------------------------------------------------------
// Randomized robustness: no line may kill the handler or produce a
// malformed response. 200 adversarial lines from a seeded generator.
// ---------------------------------------------------------------------

std::string
fuzzLine(Rng& rng, int variant)
{
    const std::string canonical =
        "{\"id\":17,\"kind\":\"evaluate\",\"macro\":\"base\","
        "\"network\":\"mvm\",\"mappings\":10,\"seed\":1}";
    switch (variant) {
    case 0: { // raw bytes, NULs and all ('\n' would end the line)
        std::string s;
        std::size_t len = 1 + rng.next() % 64;
        for (std::size_t i = 0; i < len; ++i) {
            char c = static_cast<char>(rng.next() % 256);
            s.push_back(c == '\n' ? 'x' : c);
        }
        return s;
    }
    case 1: // truncated valid request
        return canonical.substr(0, rng.next() % canonical.size());
    case 2: { // valid JSON, wrong top-level shape
        const char* shapes[] = {"[1,2,3]", "\"evaluate\"", "3.25",
                                "null", "true", "[]", "[{}]"};
        return shapes[rng.next() % std::size(shapes)];
    }
    case 3: { // object with wrong-typed / unknown members
        const char* kinds[] = {"\"ping\"", "\"bogus\"", "\"EVALUATE\"",
                               "7", "null", "[\"ping\"]", "\"\""};
        const char* extras[] = {
            "\"mappings\":\"ten\"", "\"threads\":true",
            "\"macro\":12", "\"zzz\":1", "\"sweep\":3,\"kind\":5"};
        return std::string("{\"id\":") +
               std::to_string(rng.next() % 1000) +
               ",\"kind\":" + kinds[rng.next() % std::size(kinds)] +
               "," + extras[rng.next() % std::size(extras)] + "}";
    }
    case 4: { // gigantic numbers in every position
        std::string digits;
        std::size_t len = 20 + rng.next() % 60;
        for (std::size_t i = 0; i < len; ++i)
            digits.push_back(static_cast<char>('0' + rng.next() % 10));
        return "{\"id\":" + digits + ",\"kind\":\"ping\"}";
    }
    case 5: { // nesting past the parser's depth limit
        std::size_t depth = 65 + rng.next() % 200;
        std::string s(depth, '[');
        return s;
    }
    case 6: { // embedded NUL bytes, raw and escaped
        std::string s = "{\"kind\":\"ping";
        if (rng.next() % 2) {
            s.push_back('\0'); // raw: invalid JSON
        } else {
            s += std::string("\\u") + "0000"; // escaped: decodes to NUL
        }
        s += "\"}";
        return s;
    }
    default: { // structurally broken punctuation
        const char* broken[] = {
            "{\"kind\":}", "{:\"ping\"}", "{\"kind\" \"ping\"}",
            "{\"kind\":\"ping\",}", "{,}", "}", "{\"a\":1]",
            "{\"a\":01}", "{\"a\":+1}", "{\"a\":1.}", "{\"a\":.5}",
            "{\"a\":1e}", "{\"a\":\"\\q\"}", "{\"a\":\"\\u12\"}",
            "{\"a\":\"\\ud800\"}"};
        return broken[rng.next() % std::size(broken)];
    }
    }
}

TEST(ProtocolFuzz, TwoHundredMalformedLinesNeverKillTheHandler)
{
    Harness h;
    int rejected = 0;
    for (int i = 0; i < 200; ++i) {
        Rng rng = Rng::forStream(0xF0220, static_cast<std::uint64_t>(i));
        const std::string line = fuzzLine(rng, i % 8);

        CancelToken token;
        std::string resp;
        ASSERT_NO_THROW(resp = handleRequestLine(h.server, h.client,
                                                 line, token))
            << "case " << i;
        ASSERT_FALSE(resp.empty()) << "case " << i;
        EXPECT_EQ(resp.find('\n'), std::string::npos) << "case " << i;

        std::string error;
        std::optional<JsonValue> doc = parseJson(resp, &error);
        ASSERT_TRUE(doc.has_value())
            << "case " << i << ": response not JSON (" << error
            << "): " << resp;
        ASSERT_TRUE(doc->isObject()) << "case " << i;
        const JsonValue* ok = doc->get("ok");
        ASSERT_TRUE(ok && ok->isBool()) << "case " << i;
        if (!ok->boolean) {
            ++rejected;
            const std::string kind = errorKind(*doc);
            EXPECT_TRUE(kind == "parse" || kind == "protocol" ||
                        kind == "usage")
                << "case " << i << ": unexpected kind " << kind;
        }
    }
    // The generator is overwhelmingly adversarial; only the rare
    // accidental ping/metrics may succeed.
    EXPECT_GT(rejected, 150);
    // And the handler still works after all of it.
    EXPECT_TRUE(okField(parseResponse(h.call("{\"kind\":\"ping\"}"))));
}

// ---------------------------------------------------------------------
// JSON layer pins: raw-token round trips and escaping.
// ---------------------------------------------------------------------

TEST(ProtocolJson, RawNumberTokensRoundTrip)
{
    for (const char* token :
         {"0", "-0", "1.50", "1e9", "123456789012345678901234567890",
          "-2.5E-3"}) {
        std::optional<JsonValue> doc = parseJson(token);
        ASSERT_TRUE(doc && doc->isNumber()) << token;
        EXPECT_EQ(writeJson(*doc), token);
    }
}

TEST(ProtocolJson, StringEscapingRoundTrips)
{
    std::string nasty = "quote\" slash\\ tab\t newline\n";
    nasty.push_back('\0');
    nasty += "\x01 high\xE2\x82\xAC"; // control byte + euro sign UTF-8
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    v.text = nasty;
    std::optional<JsonValue> back = parseJson(writeJson(v));
    ASSERT_TRUE(back && back->isString());
    EXPECT_EQ(back->text, nasty);
}

TEST(ProtocolJson, SurrogatePairsDecodeToUtf8)
{
    // G-clef U+1D11E as a surrogate pair.
    std::string in = std::string("\"") + "\\u" + "D834" + "\\u" +
                     "DD1E" + "\"";
    std::optional<JsonValue> doc = parseJson(in);
    ASSERT_TRUE(doc && doc->isString());
    EXPECT_EQ(doc->text, "\xF0\x9D\x84\x9E");
}

TEST(ProtocolJson, DepthLimitHolds)
{
    std::string deep(200, '[');
    deep += std::string(200, ']');
    std::string error;
    EXPECT_FALSE(parseJson(deep, &error).has_value());
    EXPECT_NE(error.find("nesting"), std::string::npos);

    std::string shallow(10, '[');
    shallow += std::string(10, ']');
    EXPECT_TRUE(parseJson(shallow).has_value());
}

} // namespace
} // namespace cimloop::serve
