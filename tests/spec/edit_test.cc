/** Programmatic hierarchy mutation: insertAfter / remove. */
#include "cimloop/spec/hierarchy.hh"

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"
#include "cimloop/engine/evaluate.hh"
#include "cimloop/macros/macros.hh"
#include "cimloop/workload/networks.hh"

namespace cimloop::spec {
namespace {

using workload::TensorKind;

SpecNode
accumulatorNode()
{
    SpecNode n;
    n.kind = SpecNode::Kind::Component;
    n.name = "analog_accumulator";
    n.klass = "AnalogAccumulator";
    n.temporal[tensorIndex(TensorKind::Output)] =
        TemporalDirective::TemporalReuse;
    return n;
}

TEST(Edit, InsertAccumulatorIntoBaseMacro)
{
    // The paper's Macro C strategy applied as a mutation of the base
    // macro: splice an analog accumulator between the ADC and the cells.
    engine::Arch arch = macros::baseMacro();
    std::size_t before = arch.hierarchy.nodes.size();
    arch.hierarchy.insertAfter("adc", accumulatorNode());
    EXPECT_EQ(arch.hierarchy.nodes.size(), before + 1);
    EXPECT_EQ(arch.hierarchy.indexOf("analog_accumulator"),
              arch.hierarchy.indexOf("adc") + 1);

    // The mutated architecture evaluates, and the accumulator delivers
    // the Macro-C benefit: ADC converts stop scaling with input bits.
    workload::Layer layer = workload::matmulLayer("mvm", 8, 128, 16);
    layer.network = "mvm";
    engine::PerActionTable table = engine::precompute(arch, layer);
    mapping::Mapper mapper(arch.hierarchy, table.extLayer);
    mapping::NestResult nest = mapping::analyzeNest(
        arch.hierarchy, mapper.greedy(), table.extLayer);
    ASSERT_TRUE(nest.valid) << nest.invalidReason;

    engine::Arch plain = macros::baseMacro();
    engine::PerActionTable ptable = engine::precompute(plain, layer);
    mapping::Mapper pmapper(plain.hierarchy, ptable.extLayer);
    mapping::NestResult pnest = mapping::analyzeNest(
        plain.hierarchy, pmapper.greedy(), ptable.extLayer);
    ASSERT_TRUE(pnest.valid);

    int adc_m = arch.hierarchy.indexOf("adc");
    int adc_p = plain.hierarchy.indexOf("adc");
    // 8 input-bit cycles accumulate before one convert.
    EXPECT_NEAR(pnest.nodes[adc_p].tensors[2].actions /
                    nest.nodes[adc_m].tensors[2].actions,
                8.0, 1e-9);
}

TEST(Edit, InsertErrors)
{
    Hierarchy h = macros::baseMacro().hierarchy;
    EXPECT_THROW(h.insertAfter("nope", accumulatorNode()), FatalError);
    // Duplicate name fails validation and reports it.
    SpecNode dup = accumulatorNode();
    dup.name = "adc";
    EXPECT_THROW(h.insertAfter("cells", dup), FatalError);
}

TEST(Edit, RemovePassThroughComponent)
{
    Hierarchy h = macros::baseMacro().hierarchy;
    std::size_t before = h.nodes.size();
    h.remove("shift_add");
    EXPECT_EQ(h.nodes.size(), before - 1);
    EXPECT_EQ(h.indexOf("shift_add"), -1);
}

TEST(Edit, RemoveStorageIsRejectedAndRestored)
{
    Hierarchy h = macros::baseMacro().hierarchy;
    std::size_t before = h.nodes.size();
    // Cells are the only weight store; removal must fail and restore.
    EXPECT_THROW(h.remove("cells"), FatalError);
    EXPECT_EQ(h.nodes.size(), before);
    EXPECT_GE(h.indexOf("cells"), 0);
    EXPECT_THROW(h.remove("ghost"), FatalError);
}

} // namespace
} // namespace cimloop::spec
