#include "cimloop/spec/hierarchy.hh"

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"
#include "cimloop/spec/builder.hh"

namespace cimloop::spec {
namespace {

using workload::Dim;
using workload::TensorKind;

// The paper's Fig. 5b specification, verbatim structure.
const char* kFig5b = R"(
# Buffer stores inputs & outputs.
!Component
name: buffer
temporal_reuse: [Inputs, Outputs] # Bypass weights
!Container
name: macro
!Component # Adder sums values and coalesces them into one output.
name: adder
coalesce: [Outputs]
!Component # Inputs pass through DACs, convert to analog.
name: DAC_bank
no_coalesce: [Inputs]
!Container # Inputs are spatially reused between columns.
name: column
spatial: {meshX: 2}
spatial_reuse: [Inputs]
!Component # Outputs pass through ADC, convert to digital.
name: ADC
no_coalesce: [Outputs]
!Component # Memory cells store & temporally reuse weights.
name: memory_cell
spatial: {meshY: 2}
temporal_reuse: [Weights]
spatial_reuse: [Outputs]
)";

TEST(Fig5b, ParsesStructure)
{
    Hierarchy h = Hierarchy::fromText(kFig5b, "fig5b");
    ASSERT_EQ(h.nodes.size(), 7u);
    EXPECT_EQ(h.nodes[0].name, "buffer");
    EXPECT_EQ(h.nodes[0].kind, SpecNode::Kind::Component);
    EXPECT_EQ(h.nodes[1].name, "macro");
    EXPECT_EQ(h.nodes[1].kind, SpecNode::Kind::Container);
    EXPECT_EQ(h.nodes[4].name, "column");
    EXPECT_EQ(h.nodes[4].meshX, 2);
    EXPECT_EQ(h.nodes[6].meshY, 2);
}

TEST(Fig5b, DirectivesApplied)
{
    Hierarchy h = Hierarchy::fromText(kFig5b, "fig5b");
    const SpecNode& buffer = h.node("buffer");
    EXPECT_EQ(buffer.directiveFor(TensorKind::Input),
              TemporalDirective::TemporalReuse);
    EXPECT_EQ(buffer.directiveFor(TensorKind::Output),
              TemporalDirective::TemporalReuse);
    EXPECT_EQ(buffer.directiveFor(TensorKind::Weight),
              TemporalDirective::Bypass);

    const SpecNode& adder = h.node("adder");
    EXPECT_EQ(adder.directiveFor(TensorKind::Output),
              TemporalDirective::Coalesce);

    const SpecNode& dac = h.node("DAC_bank");
    EXPECT_EQ(dac.directiveFor(TensorKind::Input),
              TemporalDirective::NoCoalesce);
    EXPECT_FALSE(dac.touches(TensorKind::Output));

    const SpecNode& column = h.node("column");
    EXPECT_TRUE(column.spatialReuse[tensorIndex(TensorKind::Input)]);
    EXPECT_FALSE(column.spatialReuse[tensorIndex(TensorKind::Output)]);

    const SpecNode& cell = h.node("memory_cell");
    EXPECT_TRUE(cell.stores(TensorKind::Weight));
    EXPECT_TRUE(cell.spatialReuse[tensorIndex(TensorKind::Output)]);
}

TEST(Fig5b, InstanceCounts)
{
    Hierarchy h = Hierarchy::fromText(kFig5b, "fig5b");
    EXPECT_EQ(h.instancesOf(0), 1);
    EXPECT_EQ(h.instancesOf(5), 2);  // ADC: one per column
    EXPECT_EQ(h.instancesOf(6), 2);  // cells scoped by column mesh
    EXPECT_EQ(h.instancesOf(6) * h.nodes[6].spatialFanout(), 4);
}

TEST(Parsing, AttributesAndConstraints)
{
    Hierarchy h = Hierarchy::fromText(R"(
!Component
name: adc
class: ADC
no_coalesce: [Outputs]
resolution: 8
energy_per_convert: 2.5
technology: 22nm
!Component
name: cells
class: SRAMCell
temporal_reuse: [Weights, Inputs, Outputs]
spatial: {meshY: 4}
spatial_dims: [C, WB]
flexible_spatial: false
)");
    const SpecNode& adc = h.node("adc");
    EXPECT_EQ(adc.klass, "ADC");
    EXPECT_EQ(adc.attrInt("resolution", 0), 8);
    EXPECT_DOUBLE_EQ(adc.attrDouble("energy_per_convert", 0.0), 2.5);
    EXPECT_EQ(adc.attrString("technology", ""), "22nm");
    EXPECT_EQ(adc.attrInt("missing", -3), -3);
    EXPECT_FALSE(adc.hasAttr("missing"));

    const SpecNode& cells = h.node("cells");
    ASSERT_EQ(cells.spatialDims.size(), 2u);
    EXPECT_EQ(cells.spatialDims[0], Dim::C);
    EXPECT_EQ(cells.spatialDims[1], Dim::WB);
}

TEST(Parsing, NestedAttributesBlock)
{
    Hierarchy h = Hierarchy::fromText(R"(
!Component
name: buf
temporal_reuse: [Inputs, Weights, Outputs]
attributes:
  depth: 4096
  width: 128
)");
    EXPECT_EQ(h.node("buf").attrInt("depth", 0), 4096);
    EXPECT_EQ(h.node("buf").attrInt("width", 0), 128);
}

TEST(Validation, RejectsBadSpecs)
{
    // Unknown tag.
    EXPECT_THROW(Hierarchy::fromText("!Widget\nname: x\n"), FatalError);
    // Missing name.
    EXPECT_THROW(Hierarchy::fromText("!Component\nclass: ADC\n"),
                 FatalError);
    // Duplicate names.
    EXPECT_THROW(Hierarchy::fromText(
                     "!Component\nname: a\ntemporal_reuse: [Inputs, "
                     "Weights, Outputs]\n!Component\nname: a\n"),
                 FatalError);
    // Conflicting directives for the same tensor.
    EXPECT_THROW(Hierarchy::fromText(
                     "!Component\nname: a\ntemporal_reuse: [Inputs]\n"
                     "no_coalesce: [Inputs]\n"),
                 FatalError);
    // No storage for weights.
    EXPECT_THROW(Hierarchy::fromText(
                     "!Component\nname: a\ntemporal_reuse: [Inputs, "
                     "Outputs]\n"),
                 FatalError);
    // Bad mesh.
    EXPECT_THROW(Hierarchy::fromText(
                     "!Component\nname: a\ntemporal_reuse: [Inputs, "
                     "Weights, Outputs]\nspatial: {meshX: 0}\n"),
                 FatalError);
    // Unknown spatial key.
    EXPECT_THROW(Hierarchy::fromText(
                     "!Component\nname: a\ntemporal_reuse: [Inputs, "
                     "Weights, Outputs]\nspatial: {meshZ: 2}\n"),
                 FatalError);
}

TEST(Builder, EquivalentToYaml)
{
    Hierarchy y = Hierarchy::fromText(kFig5b, "fig5b");
    Hierarchy b = HierarchyBuilder("fig5b")
        .component("buffer")
            .temporalReuse({TensorKind::Input, TensorKind::Output})
        .container("macro")
        .component("adder")
            .coalesce({TensorKind::Output})
        .component("DAC_bank")
            .noCoalesce({TensorKind::Input})
        .container("column")
            .spatial(2, 1)
            .spatialReuse({TensorKind::Input})
        .component("ADC")
            .noCoalesce({TensorKind::Output})
        .component("memory_cell")
            .spatial(1, 2)
            .temporalReuse({TensorKind::Weight})
            .spatialReuse({TensorKind::Output})
        .build();

    ASSERT_EQ(b.nodes.size(), y.nodes.size());
    for (std::size_t i = 0; i < y.nodes.size(); ++i) {
        EXPECT_EQ(b.nodes[i].name, y.nodes[i].name);
        EXPECT_EQ(b.nodes[i].kind, y.nodes[i].kind);
        EXPECT_EQ(b.nodes[i].spatialFanout(), y.nodes[i].spatialFanout());
        for (TensorKind t : workload::kAllTensors) {
            EXPECT_EQ(b.nodes[i].directiveFor(t), y.nodes[i].directiveFor(t))
                << b.nodes[i].name;
            EXPECT_EQ(b.nodes[i].spatialReuse[tensorIndex(t)],
                      y.nodes[i].spatialReuse[tensorIndex(t)]);
        }
    }
}

TEST(Builder, Errors)
{
    EXPECT_THROW(HierarchyBuilder("x").spatial(2), FatalError);
    EXPECT_THROW(HierarchyBuilder("x")
                     .component("a")
                     .temporalReuse({TensorKind::Input})
                     .coalesce({TensorKind::Input}),
                 FatalError);
    EXPECT_THROW(HierarchyBuilder("x").component("a").spatial(0),
                 FatalError);
}

TEST(Summary, MentionsEveryNode)
{
    Hierarchy h = Hierarchy::fromText(kFig5b, "fig5b");
    std::string s = h.summary();
    for (const SpecNode& n : h.nodes)
        EXPECT_NE(s.find(n.name), std::string::npos) << n.name;
}

TEST(Lookup, ByNameAndIndex)
{
    Hierarchy h = Hierarchy::fromText(kFig5b, "fig5b");
    EXPECT_EQ(h.indexOf("ADC"), 5);
    EXPECT_EQ(h.indexOf("nope"), -1);
    EXPECT_THROW(h.node("nope"), FatalError);
}

} // namespace
} // namespace cimloop::spec
