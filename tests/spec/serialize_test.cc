/** Round-tripping hierarchies through the YAML serializer. */
#include "cimloop/spec/hierarchy.hh"

#include <gtest/gtest.h>

#include "cimloop/macros/macros.hh"

namespace cimloop::spec {
namespace {

using workload::TensorKind;

/** Structural equality of two hierarchies. */
void
expectEquivalent(const Hierarchy& a, const Hierarchy& b)
{
    ASSERT_EQ(a.nodes.size(), b.nodes.size());
    for (std::size_t i = 0; i < a.nodes.size(); ++i) {
        const SpecNode& x = a.nodes[i];
        const SpecNode& y = b.nodes[i];
        EXPECT_EQ(x.name, y.name);
        EXPECT_EQ(x.kind, y.kind);
        EXPECT_EQ(x.klass, y.klass);
        EXPECT_EQ(x.meshX, y.meshX);
        EXPECT_EQ(x.meshY, y.meshY);
        EXPECT_EQ(x.flexibleSpatial, y.flexibleSpatial);
        EXPECT_EQ(x.spatialDims, y.spatialDims);
        EXPECT_EQ(x.temporalDims, y.temporalDims);
        for (TensorKind t : workload::kAllTensors) {
            EXPECT_EQ(x.directiveFor(t), y.directiveFor(t)) << x.name;
            EXPECT_EQ(x.spatialReuse[tensorIndex(t)],
                      y.spatialReuse[tensorIndex(t)])
                << x.name;
        }
        ASSERT_EQ(x.attributes.size(), y.attributes.size()) << x.name;
        for (const auto& [key, value] : x.attributes) {
            ASSERT_TRUE(y.attributes.count(key)) << x.name << "." << key;
            EXPECT_EQ(value.toString(), y.attributes.at(key).toString())
                << x.name << "." << key;
        }
    }
}

TEST(Serialize, EveryBuiltinMacroRoundTrips)
{
    for (const char* kind : {"base", "A", "B", "C", "D", "digital"}) {
        Hierarchy original = macros::macroByName(kind).hierarchy;
        std::string text = original.toYamlText();
        Hierarchy reparsed = Hierarchy::fromText(text, original.name);
        expectEquivalent(original, reparsed);
    }
}

TEST(Serialize, PreservesConstraintFields)
{
    Hierarchy h = Hierarchy::fromText(R"(
!Component
name: a
class: SRAM
temporal_reuse: [Inputs, Weights, Outputs]
temporal_dims: [P, IB]
entries: 1024
label: "hello world"
!Container
name: noc
spatial: {meshX: 4, meshY: 2}
flexible_spatial: true
!Component
name: pe
class: DigitalMac
temporal_reuse: [Weights]
spatial_dims: [C, K]
)");
    Hierarchy again = Hierarchy::fromText(h.toYamlText());
    expectEquivalent(h, again);
    // Quoted string attributes survive.
    EXPECT_EQ(again.node("a").attrString("label", ""), "hello world");
}

TEST(Serialize, OutputMentionsEveryDirective)
{
    Hierarchy h = macros::macroB().hierarchy;
    std::string text = h.toYamlText();
    for (const char* needle :
         {"!Component", "!Container", "temporal_reuse", "coalesce",
          "no_coalesce", "spatial_reuse", "spatial:", "spatial_dims"}) {
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
    }
}

} // namespace
} // namespace cimloop::spec
