/** Multi-chip pipeline (paper Sec. V-B4: large DNNs "may require a
 *  multi-chip pipeline"). */
#include "cimloop/system/system.hh"

#include <gtest/gtest.h>

#include "cimloop/workload/networks.hh"

namespace cimloop::system {
namespace {

SystemParams
base(std::int64_t chips)
{
    SystemParams p;
    p.macroKind = "D";
    p.numMacros = 4;
    p.numChips = chips;
    p.policy = WeightPolicy::WeightStationary;
    return p;
}

TEST(MultiChip, StructureAndCapacity)
{
    engine::Arch one = buildSystem(base(1));
    EXPECT_EQ(one.hierarchy.indexOf("interchip_link"), -1);
    engine::Arch four = buildSystem(base(4));
    EXPECT_GE(four.hierarchy.indexOf("interchip_link"), 0);
    EXPECT_EQ(four.hierarchy.node("chips").spatialFanout(), 4);
    // 4x the weight-holding macro instances.
    int bank = four.hierarchy.indexOf("weight_bank");
    EXPECT_EQ(four.hierarchy.instancesOf(bank),
              4 * one.hierarchy.instancesOf(
                      one.hierarchy.indexOf("weight_bank")));
}

TEST(MultiChip, FitsWeightsOneChipCannot)
{
    // A layer whose weights exceed one chip's banks maps (weights
    // resident) across enough chips.
    workload::Layer big = workload::matmulLayer("wide", 64, 512, 4096);
    big.network = "mvm";

    engine::Arch quad = buildSystem(base(8));
    engine::SearchResult sr = engine::searchMappings(quad, big, 60, 1);
    EXPECT_TRUE(sr.best.valid);
    EXPECT_GT(sr.best.energyPj, 0.0);
}

TEST(MultiChip, LinkEnergyAppearsInBreakdown)
{
    workload::Layer layer = workload::resnet18().layers[8];
    engine::Arch chips = buildSystem(base(4));
    engine::SearchResult sr = engine::searchMappings(chips, layer, 60, 1);
    int link = chips.hierarchy.indexOf("interchip_link");
    ASSERT_GE(link, 0);
    EXPECT_GT(sr.best.nodeEnergyPj[link], 0.0);
    // More chips, more boundary crossings for the same work: total
    // energy should not drop below the single-chip system.
    engine::Arch one = buildSystem(base(1));
    engine::SearchResult sr1 = engine::searchMappings(one, layer, 60, 1);
    EXPECT_GE(sr.best.energyPj, 0.8 * sr1.best.energyPj);
}

} // namespace
} // namespace cimloop::system
