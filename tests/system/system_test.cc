#include "cimloop/system/system.hh"

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"
#include "cimloop/workload/networks.hh"

namespace cimloop::system {
namespace {

using engine::searchMappings;
using engine::SearchResult;

SystemParams
smallSystem(WeightPolicy policy)
{
    SystemParams p;
    p.macroKind = "D";
    p.macro = macros::macroDDefaults();
    p.numMacros = 4;
    p.globalBufferKb = 16384;
    p.policy = policy;
    return p;
}

TEST(Build, StructurePerPolicy)
{
    engine::Arch off = buildSystem(smallSystem(WeightPolicy::OffChip));
    EXPECT_GE(off.hierarchy.indexOf("dram"), 0);
    EXPECT_TRUE(off.hierarchy.node("dram").stores(
        workload::TensorKind::Weight));

    engine::Arch ws =
        buildSystem(smallSystem(WeightPolicy::WeightStationary));
    EXPECT_GE(ws.hierarchy.indexOf("dram"), 0);
    EXPECT_FALSE(ws.hierarchy.node("dram").stores(
        workload::TensorKind::Weight));
    EXPECT_TRUE(ws.hierarchy.node("dram").stores(
        workload::TensorKind::Input));

    engine::Arch fused = buildSystem(smallSystem(WeightPolicy::Fused));
    EXPECT_EQ(fused.hierarchy.indexOf("dram"), -1);
}

TEST(Build, EmbedsTheMacro)
{
    engine::Arch arch = buildSystem(smallSystem(WeightPolicy::OffChip));
    EXPECT_GE(arch.hierarchy.indexOf("mac_units"), 0);
    EXPECT_GE(arch.hierarchy.indexOf("global_buffer"), 0);
    EXPECT_GE(arch.hierarchy.indexOf("router"), 0);
    EXPECT_EQ(arch.hierarchy.node("macro_array").spatialFanout(), 4);
}

TEST(Policies, EnergyOrderingMatchesFig15)
{
    // Paper Fig. 15: off-chip > weight-stationary > fused.
    workload::Layer layer = workload::resnet18().layers[8];
    double off = 0.0, ws = 0.0, fused = 0.0;
    for (auto [policy, out] :
         {std::pair{WeightPolicy::OffChip, &off},
          std::pair{WeightPolicy::WeightStationary, &ws},
          std::pair{WeightPolicy::Fused, &fused}}) {
        engine::Arch arch = buildSystem(smallSystem(policy));
        SearchResult sr = searchMappings(arch, layer, 80, 7);
        ASSERT_TRUE(sr.best.valid) << policyName(policy);
        *out = sr.best.energyPj;
    }
    EXPECT_GT(off, ws);
    EXPECT_GT(ws, fused);
}

TEST(Breakdown, GroupsSumToTotal)
{
    engine::Arch arch =
        buildSystem(smallSystem(WeightPolicy::WeightStationary));
    workload::Layer layer = workload::resnet18().layers[6];
    SearchResult sr = searchMappings(arch, layer, 60, 3);
    ASSERT_TRUE(sr.best.valid);
    SystemBreakdown bd = groupBreakdown(arch, sr.best);
    EXPECT_NEAR(bd.totalPj(), sr.best.energyPj,
                1e-9 * sr.best.energyPj);
    EXPECT_GT(bd.offChipPj, 0.0);       // inputs/outputs still off-chip
    EXPECT_GT(bd.macroComputePj, 0.0);
}

TEST(Breakdown, FusedHasNoOffChip)
{
    engine::Arch arch = buildSystem(smallSystem(WeightPolicy::Fused));
    workload::Layer layer = workload::resnet18().layers[6];
    SearchResult sr = searchMappings(arch, layer, 60, 3);
    ASSERT_TRUE(sr.best.valid);
    SystemBreakdown bd = groupBreakdown(arch, sr.best);
    EXPECT_DOUBLE_EQ(bd.offChipPj, 0.0);
}

TEST(WeightStationary, CutsDramWeightTraffic)
{
    // The mechanism behind Fig. 15: DRAM energy drops when weights stop
    // moving off-chip; macro compute energy stays the same.
    workload::Layer layer = workload::resnet18().layers[10];
    engine::Arch off = buildSystem(smallSystem(WeightPolicy::OffChip));
    engine::Arch ws =
        buildSystem(smallSystem(WeightPolicy::WeightStationary));
    SearchResult sr_off = searchMappings(off, layer, 80, 11);
    SearchResult sr_ws = searchMappings(ws, layer, 80, 11);
    SystemBreakdown bd_off = groupBreakdown(off, sr_off.best);
    SystemBreakdown bd_ws = groupBreakdown(ws, sr_ws.best);
    EXPECT_LT(bd_ws.offChipPj, bd_off.offChipPj);
    EXPECT_NEAR(bd_ws.macroComputePj / bd_off.macroComputePj, 1.0, 0.5);
}

// The two mechanisms behind paper Fig. 2a (macro optimum != system
// optimum): (1) idle cells make an oversized array *worse* at the macro
// level when converter counts cannot improve further; (2) a bigger array
// cuts the number of weight-tile passes, and with them the off-chip
// refetch traffic. Their opposite pulls produce Fig. 2a's crossover,
// regenerated in full by bench/fig2a_macro_vs_system.
TEST(FullStack, Fig2aIdleCellsPenalizeOversizedMacro)
{
    // Reduction (C = 64) and outputs (K*WB = 8*8 = 64) saturate a 64x64
    // array; a 512x512 array gains nothing and pays idle-cell energy.
    workload::Layer layer = workload::matmulLayer("small", 64, 64, 8);
    layer.network = "mvm";
    auto macroEnergy = [&](std::int64_t n) {
        macros::MacroParams mp = macros::baseDefaults();
        mp.rows = n;
        mp.cols = n;
        engine::Arch arch = macros::baseMacro(mp);
        return searchMappings(arch, layer, 80, 5).best.energyPj;
    };
    EXPECT_GT(macroEnergy(512), 1.2 * macroEnergy(64));
}

TEST(FullStack, Fig2aMacroAndSystemOptimaDiverge)
{
    // The headline Fig. 2a crossover on ResNet18 (regenerated in full by
    // bench/fig2a_macro_vs_system): between 256 and 1024, the bare macro
    // prefers the smaller array (idle cells + wider ADCs) while the full
    // system prefers the larger one (less memory-hierarchy traffic).
    workload::Network net = workload::resnet18();

    auto energies = [&](std::int64_t n) {
        macros::MacroParams mp = macros::baseDefaults();
        mp.rows = n;
        mp.cols = n;
        mp.adcBits = macros::scaledAdcBits(n);
        engine::Arch macro_arch = macros::baseMacro(mp);
        SystemParams sp;
        sp.macroKind = "base";
        sp.macro = mp;
        sp.numMacros = 4;
        sp.policy = WeightPolicy::OffChip;
        engine::Arch system_arch = buildSystem(sp);
        double macro_pj =
            engine::evaluateNetwork(macro_arch, net, 100, 1).energyPj;
        double system_pj =
            engine::evaluateNetwork(system_arch, net, 100, 1).energyPj;
        return std::pair{macro_pj, system_pj};
    };

    auto [macro_256, system_256] = energies(256);
    auto [macro_1024, system_1024] = energies(1024);
    EXPECT_LT(macro_256, macro_1024);   // macro prefers the smaller array
    EXPECT_LT(system_1024, system_256); // system prefers the larger array
}

TEST(Params, Validation)
{
    SystemParams p = smallSystem(WeightPolicy::OffChip);
    p.numMacros = 0;
    EXPECT_THROW(buildSystem(p), PanicError);
    p = smallSystem(WeightPolicy::OffChip);
    p.macroKind = "Z";
    EXPECT_THROW(buildSystem(p), FatalError);
}

TEST(PolicyNames, AllDistinct)
{
    EXPECT_STRNE(policyName(WeightPolicy::OffChip),
                 policyName(WeightPolicy::Fused));
    EXPECT_STRNE(policyName(WeightPolicy::WeightStationary),
                 policyName(WeightPolicy::Fused));
}

} // namespace
} // namespace cimloop::system
