#!/usr/bin/env bash
# Self-test for scripts/bench_compare.sh using fixture snapshots: the
# gate must pass matching runs, fail regressed ones (with REGRESSED in
# the report), tolerate improvements, and error out when no gated
# kernel is present. Registered in tests/CMakeLists.txt as
# `bench_compare_gate`, so tier-1 ctest exercises the gate itself.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
COMPARE="${REPO_ROOT}/scripts/bench_compare.sh"
TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

# Minimal google-benchmark-shaped snapshots. BM_PmfConvolveLattice is
# gated by the default BENCH_GATE_REGEX; BM_Ungated is context only.
# The aggregate entry and the errored entry must both be ignored.
write_snapshot() { # path convolve_ns ungated_ns
    cat > "$1" <<EOF
{
  "context": {
    "cimloop_build_type": "release",
    "library_build_type": "release"
  },
  "benchmarks": [
    {"name": "BM_PmfConvolveLattice", "run_type": "iteration",
     "real_time": $2, "time_unit": "ns"},
    {"name": "BM_PmfConvolveLattice_mean", "run_type": "aggregate",
     "real_time": 999999, "time_unit": "ns"},
    {"name": "BM_Broken", "run_type": "iteration",
     "error_occurred": true, "real_time": 1, "time_unit": "ns"},
    {"name": "BM_Ungated", "run_type": "iteration",
     "real_time": $3, "time_unit": "us"}
  ]
}
EOF
}

fail() {
    echo "FAIL: $1" >&2
    exit 1
}

write_snapshot "${TMP}/base.json" 1000 5
write_snapshot "${TMP}/same.json" 1000 5
write_snapshot "${TMP}/regressed.json" 2000 5  # gated kernel 2x slower
write_snapshot "${TMP}/improved.json" 400 5000 # gated faster, ungated 1000x slower
write_snapshot "${TMP}/faster_base.json" 500 5

# 1. Identical snapshots pass.
BENCH_REPORT="${TMP}/report_ok.txt" \
    "${COMPARE}" -b "${TMP}/base.json" -c "${TMP}/same.json" >/dev/null ||
    fail "identical snapshots should pass"
grep -q 'OK: all gated kernels within tolerance' "${TMP}/report_ok.txt" ||
    fail "passing report missing OK line"

# 2. A gated 2x slowdown fails with exit 1 and REGRESSED in the report.
if BENCH_REPORT="${TMP}/report_bad.txt" \
    "${COMPARE}" -b "${TMP}/base.json" -c "${TMP}/regressed.json" \
    >/dev/null; then
    fail "regressed snapshot should exit nonzero"
fi
rc=0
BENCH_REPORT="${TMP}/report_bad.txt" \
    "${COMPARE}" -b "${TMP}/base.json" -c "${TMP}/regressed.json" \
    >/dev/null || rc=$?
[ "${rc}" -eq 1 ] || fail "regression should exit 1, got ${rc}"
grep -q 'REGRESSED' "${TMP}/report_bad.txt" ||
    fail "failing report missing REGRESSED verdict"
grep -q 'BM_PmfConvolveLattice' "${TMP}/report_bad.txt" ||
    fail "failing report does not name the regressed kernel"

# 3. Improvements pass, and ungated kernels never trip the gate even
#    when wildly slower.
BENCH_REPORT="${TMP}/report_improved.txt" \
    "${COMPARE}" -b "${TMP}/base.json" -c "${TMP}/improved.json" \
    >/dev/null || fail "improvement (+ ungated slowdown) should pass"
grep -q 'improved' "${TMP}/report_improved.txt" ||
    fail "improvement not marked in report"

# 4. A regression below the 50% tolerance passes at the CI-style loose
#    setting: 500ns -> 1000ns is +100%, so it still fails there; but
#    1000 -> regressed 2000 within tolerance 150 passes.
BENCH_TOLERANCE_PCT=150 BENCH_REPORT="${TMP}/report_tol.txt" \
    "${COMPARE}" -b "${TMP}/base.json" -c "${TMP}/regressed.json" \
    >/dev/null || fail "slowdown inside a loose tolerance should pass"

# 5. No gated kernel in either snapshot -> exit 2 (misconfiguration).
rc=0
BENCH_GATE_REGEX='^BM_DoesNotExist$' BENCH_REPORT="${TMP}/report_none.txt" \
    "${COMPARE}" -b "${TMP}/base.json" -c "${TMP}/same.json" \
    >/dev/null || rc=$?
[ "${rc}" -eq 2 ] || fail "empty gate should exit 2, got ${rc}"

echo "bench_compare_gate: all cases passed"
