#!/usr/bin/env bash
# SIGINT end-to-end test for the cooperative-cancellation layer: a
# journaled sweep interrupted mid-flight must exit 130, keep only whole
# committed chunks in its journal, and — once resumed — reproduce the
# uninterrupted run's artifacts byte-for-byte, at --threads 1 and 8.
# Registered in tests/CMakeLists.txt as `cancel_resume_e2e`; the built
# cimloop_tool binary comes in as $1.
set -euo pipefail

TOOL="${1:?usage: cancel_resume_test.sh /path/to/cimloop_tool}"
[ -x "${TOOL}" ] || { echo "FAIL: '${TOOL}' is not executable" >&2; exit 1; }
TMP="$(mktemp -d)"
trap 'rm -rf "${TMP}"' EXIT

fail() {
    echo "FAIL: $1" >&2
    exit 1
}

# 32 points at chunk-size 1 gives the signal plenty of chunk boundaries
# to land between, and the mapping budget makes each point slow enough
# (~4 s serial total) that a 0.3 s-delayed SIGINT reliably arrives
# mid-sweep. Deterministic seed: artifacts must be byte-stable.
SPEC="${TMP}/sweep.yaml"
cat > "${SPEC}" <<EOF
sweep:
  name: sigint-e2e
  network: mvm
  mappings: 20000
  scaled_adc: true
  axes:
    - field: array
      values: [64, 96, 128, 192, 256, 384, 512, 1024]
    - field: dac_bits
      values: [1, 2, 3, 4]
EOF

run_leg() { # threads journal_dir out_file csv json extra_args...
    local threads="$1" dir="$2" out="$3" csv="$4" json="$5"
    shift 5
    local rc=0
    "${TOOL}" --sweep "${SPEC}" --seed 3 --threads "${threads}" \
        ${dir:+--resume "${dir}"} ${dir:+--chunk-size} ${dir:+1} \
        --csv "${csv}" --json "${json}" "$@" > "${out}" 2>&1 || rc=$?
    return "${rc}"
}

for T in 1 8; do
    DIR="${TMP}/journal_t${T}"

    # Uninterrupted reference run (no journal).
    run_leg "${T}" "" "${TMP}/clean_t${T}.out" \
        "${TMP}/clean_t${T}.csv" "${TMP}/clean_t${T}.json" ||
        fail "clean run (threads ${T}) failed"

    # Interrupted leg: start in the background, let a few chunks land,
    # then SIGINT once. The handler flips the token; the chunk in
    # flight commits; the process exits 130.
    "${TOOL}" --sweep "${SPEC}" --seed 3 --threads "${T}" \
        --resume "${DIR}" --chunk-size 1 \
        --csv "${TMP}/interrupted_t${T}.csv" \
        --json "${TMP}/interrupted_t${T}.json" \
        > "${TMP}/interrupted_t${T}.out" 2>&1 &
    PID=$!
    sleep 0.3
    kill -INT "${PID}" 2>/dev/null || true
    rc=0
    wait "${PID}" || rc=$?

    if [ "${rc}" -eq 130 ]; then
        grep -q 'sweep cancelled (signal)' "${TMP}/interrupted_t${T}.out" ||
            fail "interrupted run (threads ${T}) missing cancel notice"
        grep -q 'paused after' "${TMP}/interrupted_t${T}.out" ||
            fail "interrupted run (threads ${T}) missing pause hint"
        grep -q -- "--resume ${DIR}" "${TMP}/interrupted_t${T}.out" ||
            fail "interrupted run (threads ${T}) missing resume hint"
        [ -f "${DIR}/manifest.jsonl" ] ||
            fail "interrupted run (threads ${T}) left no journal manifest"
        # Whole chunks only: every committed chunk's records are already
        # durable, so result lines >= commit lines (chunk size 1).
        commits="$(grep -c '^{"chunk":' "${DIR}/manifest.jsonl" || true)"
        records="$(grep -c '^{"i":' "${DIR}/results.jsonl" || true)"
        [ "${records}" -ge "${commits}" ] ||
            fail "journal (threads ${T}) commits chunks it never wrote"
    elif [ "${rc}" -eq 0 ]; then
        # The sweep won the race and finished before the signal landed.
        # Rare but legal; the resume leg below still must reproduce it.
        echo "note: sweep finished before SIGINT (threads ${T})" >&2
    else
        cat "${TMP}/interrupted_t${T}.out" >&2
        fail "interrupted run (threads ${T}) exited ${rc}, want 130 or 0"
    fi

    # Resume and compare: committed chunks are replayed from the
    # journal, the rest evaluated fresh; artifacts must be identical to
    # the uninterrupted run's.
    run_leg "${T}" "${DIR}" "${TMP}/resumed_t${T}.out" \
        "${TMP}/resumed_t${T}.csv" "${TMP}/resumed_t${T}.json" ||
        fail "resumed run (threads ${T}) failed"
    cmp -s "${TMP}/clean_t${T}.csv" "${TMP}/resumed_t${T}.csv" ||
        fail "resumed CSV (threads ${T}) differs from the clean run"
    cmp -s "${TMP}/clean_t${T}.json" "${TMP}/resumed_t${T}.json" ||
        fail "resumed JSON (threads ${T}) differs from the clean run"
    # Reports match too, modulo the artifact paths in the "wrote" lines.
    diff <(grep -v '^wrote ' "${TMP}/clean_t${T}.out") \
         <(grep -v '^wrote ' "${TMP}/resumed_t${T}.out") >/dev/null ||
        fail "resumed report (threads ${T}) differs from the clean run"
done

# Thread counts must not change the numbers either.
cmp -s "${TMP}/clean_t1.csv" "${TMP}/clean_t8.csv" ||
    fail "clean CSVs differ between --threads 1 and 8"

echo "cancel_resume_e2e: all cases passed"
