#!/usr/bin/env bash
# Black-box end-to-end test for `cimloop serve`: start the real daemon
# on a Unix socket, drive it with the real NDJSON client, and hold it
# to its contracts:
#  - evaluate/sweep responses byte-identical to the one-shot CLI at the
#    same seed, at request threads 1 and 8, cold and warm cache;
#  - malformed lines get structured errors and never kill the daemon;
#  - a timeout_s request exits 124 with a "deadline" error;
#  - metrics exposes cache hit/miss growth across requests;
#  - a shutdown request stops the daemon with exit 0.
# Registered in tests/CMakeLists.txt as `serve_e2e`; the built cimloop
# and cimloop_client binaries come in as $1 and $2.
set -euo pipefail

TOOL="${1:?usage: serve_e2e.sh /path/to/cimloop /path/to/cimloop_client}"
CLIENT="${2:?usage: serve_e2e.sh /path/to/cimloop /path/to/cimloop_client}"
[ -x "${TOOL}" ] || { echo "FAIL: '${TOOL}' is not executable" >&2; exit 1; }
[ -x "${CLIENT}" ] || { echo "FAIL: '${CLIENT}' is not executable" >&2; exit 1; }
TMP="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "${SERVER_PID}" ] && kill "${SERVER_PID}" 2>/dev/null || true
    rm -rf "${TMP}"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $1" >&2
    [ -f "${TMP}/serve.log" ] && cat "${TMP}/serve.log" >&2
    exit 1
}

# mktemp -d can return a long path; AF_UNIX caps sun_path at ~107 bytes.
SOCK="${TMP}/s.sock"
SPEC="${TMP}/sweep.yaml"
cat > "${SPEC}" <<EOF
sweep:
  name: serve-e2e
  macro: base
  network: mvm
  seed: 3
  axes:
    - field: dac_bits
      values: [1, 2]
    - field: mappings
      values: [6]
EOF

"${TOOL}" serve --listen "${SOCK}" --cache-mb 64 --threads 1 \
    > "${TMP}/serve.out" 2> "${TMP}/serve.log" &
SERVER_PID=$!

# The client retries connect while the daemon binds; confirm liveness.
echo '{"id":0,"kind":"ping"}' | "${CLIENT}" --socket "${SOCK}" \
    > "${TMP}/ping.out" || fail "ping failed"
grep -q '"pong":true' "${TMP}/ping.out" || fail "ping got no pong"

# --- Determinism contract: daemon bytes == one-shot CLI bytes --------
for T in 1 8; do
    "${TOOL}" --macro base --network mvm --mappings 12 --seed 5 \
        --threads "${T}" > "${TMP}/oneshot_eval_t${T}.out" ||
        fail "one-shot evaluate (threads ${T}) failed"
    printf '{"id":1,"kind":"evaluate","macro":"base","network":"mvm","mappings":12,"seed":5,"threads":%s}\n' "${T}" |
        "${CLIENT}" --socket "${SOCK}" --extract-stdout \
        > "${TMP}/daemon_eval_t${T}.out" 2> "${TMP}/daemon_eval_t${T}.err" ||
        fail "daemon evaluate (threads ${T}) failed"
    cmp -s "${TMP}/daemon_eval_t${T}.out" "${TMP}/oneshot_eval_t${T}.out" ||
        fail "daemon evaluate stdout differs from one-shot (threads ${T})"

    "${TOOL}" --sweep "${SPEC}" --threads "${T}" \
        > "${TMP}/oneshot_sweep_t${T}.out" ||
        fail "one-shot sweep (threads ${T}) failed"
    printf '{"id":2,"kind":"sweep","sweep":"%s","threads":%s}\n' "${SPEC}" "${T}" |
        "${CLIENT}" --socket "${SOCK}" --extract-stdout \
        > "${TMP}/daemon_sweep_t${T}.out" 2> /dev/null ||
        fail "daemon sweep (threads ${T}) failed"
    cmp -s "${TMP}/daemon_sweep_t${T}.out" "${TMP}/oneshot_sweep_t${T}.out" ||
        fail "daemon sweep stdout differs from one-shot (threads ${T})"
done

# Warm cache must change counters, never bytes: repeat the threads-1
# evaluate on a fresh connection and byte-compare again.
printf '{"id":3,"kind":"evaluate","macro":"base","network":"mvm","mappings":12,"seed":5,"threads":1}\n' |
    "${CLIENT}" --socket "${SOCK}" --extract-stdout \
    > "${TMP}/daemon_eval_warm.out" 2> /dev/null ||
    fail "warm daemon evaluate failed"
cmp -s "${TMP}/daemon_eval_warm.out" "${TMP}/oneshot_eval_t1.out" ||
    fail "warm-cache evaluate bytes differ from one-shot"

# --- Robustness: garbage on the wire, daemon must keep serving -------
{
    echo 'this is not json'
    echo '{"id":4,"kind":"evaluate","mappings":"ten"}'
    echo '[]'
    echo '{"id":5,"kind":"ping"}'
} | "${CLIENT}" --socket "${SOCK}" > "${TMP}/garbage.out" 2>/dev/null && rc=0 || rc=$?
[ "${rc}" -eq 1 ] || fail "client should exit 1 when any response is not ok"
[ "$(wc -l < "${TMP}/garbage.out")" -eq 4 ] ||
    fail "expected one response line per request line"
grep -q '"kind":"parse"' "${TMP}/garbage.out" || fail "missing parse error"
grep -q '"kind":"protocol"' "${TMP}/garbage.out" || fail "missing protocol error"
tail -1 "${TMP}/garbage.out" | grep -q '"pong":true' ||
    fail "daemon stopped serving after malformed input"
kill -0 "${SERVER_PID}" 2>/dev/null || fail "daemon died on malformed input"

# --- Deadlines: timeout_s maps to exit 124 / "deadline" --------------
printf '{"id":6,"kind":"evaluate","macro":"base","network":"mvm","mappings":4000,"timeout_s":0.000001}\n' |
    "${CLIENT}" --socket "${SOCK}" > "${TMP}/timeout.out" 2>/dev/null && rc=0 || rc=$?
[ "${rc}" -eq 1 ] || fail "timed-out request should make the client exit 1"
grep -q '"exit":124' "${TMP}/timeout.out" || fail "timeout did not exit 124"
grep -q '"kind":"deadline"' "${TMP}/timeout.out" ||
    fail "timeout error kind is not deadline"

# --- Metrics: cross-request cache accounting -------------------------
echo '{"id":7,"kind":"metrics"}' | "${CLIENT}" --socket "${SOCK}" \
    > "${TMP}/metrics.out" || fail "metrics failed"
grep -q '"cache":{"hits":' "${TMP}/metrics.out" || fail "metrics lacks cache block"
grep -q '"budget_bytes":67108864' "${TMP}/metrics.out" ||
    fail "metrics does not report the --cache-mb 64 budget"
# The repeated evaluates above must have produced cross-request hits.
hits="$(sed -n 's/.*"cache":{"hits":\([0-9]*\).*/\1/p' "${TMP}/metrics.out")"
[ "${hits:-0}" -ge 1 ] || fail "no cross-request cache hits recorded"

# --- Graceful shutdown: exit 0, socket unlinked ----------------------
echo '{"id":8,"kind":"shutdown"}' | "${CLIENT}" --socket "${SOCK}" \
    > "${TMP}/shutdown.out" || fail "shutdown request failed"
grep -q '"shutting_down":true' "${TMP}/shutdown.out" ||
    fail "shutdown not acknowledged"
rc=0
wait "${SERVER_PID}" || rc=$?
SERVER_PID=""
[ "${rc}" -eq 0 ] || fail "daemon exited ${rc} after shutdown, want 0"
[ ! -e "${SOCK}" ] || fail "daemon left its socket behind"

echo "serve_e2e: all cases passed"
