/** Shape sanity for the additional bundled networks. */
#include "cimloop/workload/networks.hh"

#include <gtest/gtest.h>

namespace cimloop::workload {
namespace {

TEST(AlexNet, Shapes)
{
    Network net = alexNet();
    ASSERT_EQ(net.layers.size(), 8u);
    EXPECT_EQ(net.layers[0].size(Dim::R), 11); // 11x11 stem
    EXPECT_EQ(net.layers.back().size(Dim::K), 1000);
    // ~0.7 GMACs for the standard AlexNet forward pass (single-tower,
    // nominal output sizes land slightly above).
    double gmacs = static_cast<double>(net.totalMacs()) / 1e9;
    EXPECT_GT(gmacs, 0.4);
    EXPECT_LT(gmacs, 2.0);
    // The FC layers carry most of the weights (the classic imbalance).
    std::int64_t conv_w = 0, fc_w = 0;
    for (const Layer& l : net.layers) {
        if (l.name[0] == 'f')
            fc_w += l.tensorSize(TensorKind::Weight);
        else
            conv_w += l.tensorSize(TensorKind::Weight);
    }
    EXPECT_GT(fc_w, 5 * conv_w);
}

TEST(Vgg16, Shapes)
{
    Network net = vgg16();
    ASSERT_EQ(net.layers.size(), 16u);
    // ~15.5 GMACs at 224x224.
    double gmacs = static_cast<double>(net.totalMacs()) / 1e9;
    EXPECT_GT(gmacs, 12.0);
    EXPECT_LT(gmacs, 20.0);
    // All convolutions are 3x3 (VGG's defining property).
    for (const Layer& l : net.layers) {
        if (l.name[0] == 'c') {
            EXPECT_EQ(l.size(Dim::R), 3) << l.name;
            EXPECT_EQ(l.size(Dim::S), 3) << l.name;
        }
    }
}

TEST(Bert, Shapes)
{
    Network net = bertBase(384);
    // Six matmul kinds, each repeated 12x.
    ASSERT_EQ(net.layers.size(), 6u);
    for (const Layer& l : net.layers)
        EXPECT_EQ(l.count, 12) << l.name;
    // ~40-ish GMACs at seq 384 across 12 blocks (with attention).
    double gmacs = static_cast<double>(net.totalMacs()) / 1e9;
    EXPECT_GT(gmacs, 20.0);
    EXPECT_LT(gmacs, 60.0);
    // Attention score matmuls scale with seq^2.
    Network longer = bertBase(768);
    auto scoreMacs = [](const Network& n) {
        for (const Layer& l : n.layers) {
            if (l.name == "blk_scores")
                return l.macs();
        }
        return std::int64_t{0};
    };
    EXPECT_NEAR(static_cast<double>(scoreMacs(longer)) /
                    static_cast<double>(scoreMacs(net)),
                4.0, 1e-9);
}

} // namespace
} // namespace cimloop::workload
