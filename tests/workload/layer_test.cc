#include "cimloop/workload/layer.hh"

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"

namespace cimloop::workload {
namespace {

TEST(Dims, NamesAndIndices)
{
    EXPECT_STREQ(dimName(Dim::N), "N");
    EXPECT_STREQ(dimName(Dim::S), "S");
    EXPECT_EQ(dimIndex(Dim::N), 0);
    EXPECT_EQ(dimIndex(Dim::S), 6);
}

TEST(Tensors, NameRoundTrip)
{
    EXPECT_EQ(tensorFromString("Inputs"), TensorKind::Input);
    EXPECT_EQ(tensorFromString("weight"), TensorKind::Weight);
    EXPECT_EQ(tensorFromString("OUTPUTS"), TensorKind::Output);
    EXPECT_THROW(tensorFromString("psums"), FatalError);
}

TEST(Relevance, Projections)
{
    // Weights: C K R S.
    EXPECT_TRUE(dimRelevantTo(TensorKind::Weight, Dim::C));
    EXPECT_TRUE(dimRelevantTo(TensorKind::Weight, Dim::K));
    EXPECT_FALSE(dimRelevantTo(TensorKind::Weight, Dim::N));
    EXPECT_FALSE(dimRelevantTo(TensorKind::Weight, Dim::P));
    // Outputs: N K P Q.
    EXPECT_TRUE(dimRelevantTo(TensorKind::Output, Dim::P));
    EXPECT_FALSE(dimRelevantTo(TensorKind::Output, Dim::C));
    EXPECT_FALSE(dimRelevantTo(TensorKind::Output, Dim::R));
    // Inputs: everything except K (P/R and Q/S couple through the halo).
    EXPECT_TRUE(dimRelevantTo(TensorKind::Input, Dim::R));
    EXPECT_FALSE(dimRelevantTo(TensorKind::Input, Dim::K));
    // Bit-slice dims: IB belongs to Inputs, WB to Weights, neither to
    // Outputs (they are reductions for Outputs).
    EXPECT_TRUE(dimRelevantTo(TensorKind::Input, Dim::IB));
    EXPECT_FALSE(dimRelevantTo(TensorKind::Input, Dim::WB));
    EXPECT_TRUE(dimRelevantTo(TensorKind::Weight, Dim::WB));
    EXPECT_FALSE(dimRelevantTo(TensorKind::Weight, Dim::IB));
    EXPECT_FALSE(dimRelevantTo(TensorKind::Output, Dim::IB));
    EXPECT_FALSE(dimRelevantTo(TensorKind::Output, Dim::WB));
}

TEST(Reduction, Dims)
{
    EXPECT_TRUE(isReductionDim(Dim::C));
    EXPECT_TRUE(isReductionDim(Dim::R));
    EXPECT_TRUE(isReductionDim(Dim::S));
    EXPECT_TRUE(isReductionDim(Dim::IB));
    EXPECT_TRUE(isReductionDim(Dim::WB));
    EXPECT_FALSE(isReductionDim(Dim::K));
    EXPECT_FALSE(isReductionDim(Dim::N));
}

TEST(SliceDims, ScaleUnitOpsAndSliceFootprints)
{
    Layer l = matmulLayer("mm", 4, 8, 16);
    l.dims[dimIndex(Dim::IB)] = 8; // 8 input-bit slices
    l.dims[dimIndex(Dim::WB)] = 2; // 2 weight-bit slices
    // Unit cell operations scale with both slice counts.
    EXPECT_EQ(l.macs(), 4LL * 8 * 16 * 8 * 2);
    // Input slices scale with IB only, weight slices with WB only.
    EXPECT_EQ(l.tensorSize(TensorKind::Input), 4LL * 8 * 8);
    EXPECT_EQ(l.tensorSize(TensorKind::Weight), 8LL * 16 * 2);
    EXPECT_EQ(l.tensorSize(TensorKind::Output), 4LL * 16);
}

TEST(Conv, MacsAndFootprints)
{
    Layer l = convLayer("c", 1, 64, 128, 28, 28, 3, 3);
    EXPECT_EQ(l.macs(), 1LL * 64 * 128 * 28 * 28 * 3 * 3);
    EXPECT_EQ(l.tensorSize(TensorKind::Weight), 64LL * 128 * 3 * 3);
    EXPECT_EQ(l.tensorSize(TensorKind::Output), 128LL * 28 * 28);
    EXPECT_EQ(l.tensorSize(TensorKind::Input), 64LL * 30 * 30); // halo
}

TEST(Matmul, MapsOntoConvForm)
{
    Layer l = matmulLayer("mm", 196, 768, 2304);
    EXPECT_EQ(l.size(Dim::P), 196);
    EXPECT_EQ(l.size(Dim::C), 768);
    EXPECT_EQ(l.size(Dim::K), 2304);
    EXPECT_EQ(l.macs(), 196LL * 768 * 2304);
    EXPECT_EQ(l.tensorSize(TensorKind::Input), 196LL * 768);
    EXPECT_EQ(l.tensorSize(TensorKind::Weight), 768LL * 2304);
    EXPECT_EQ(l.tensorSize(TensorKind::Output), 196LL * 2304);
}

TEST(Tile, PartialExtents)
{
    DimSizes ext = onesDims();
    ext[dimIndex(Dim::C)] = 16;
    ext[dimIndex(Dim::K)] = 8;
    ext[dimIndex(Dim::R)] = 3;
    ext[dimIndex(Dim::S)] = 3;
    EXPECT_EQ(Layer::tensorTile(TensorKind::Weight, ext), 16LL * 8 * 3 * 3);
    // Inputs: P=Q=1 tiles with R=S=3 still need a 3x3 halo.
    EXPECT_EQ(Layer::tensorTile(TensorKind::Input, ext), 16LL * 3 * 3);
    EXPECT_EQ(Layer::tensorTile(TensorKind::Output, ext), 8);
}

TEST(Layer, ShapeString)
{
    Layer l = convLayer("c", 1, 2, 3, 4, 5, 6, 7);
    EXPECT_EQ(l.shapeString(), "N1 C2 K3 P4 Q5 R6 S7 IB1 WB1");
}

TEST(Layer, InvalidDimsFatal)
{
    EXPECT_THROW(convLayer("bad", 0, 1, 1, 1, 1, 1, 1), PanicError);
}

// Property: tensor tile with full extents equals tensorSize; MACs equal
// product of relevant iteration space.
class TileProperty : public ::testing::TestWithParam<int>
{};

TEST_P(TileProperty, FullTileIsFullTensor)
{
    int seed = GetParam();
    Layer l = convLayer("p", 1 + seed % 2, 1 + seed * 3 % 64,
                        1 + seed * 7 % 128, 1 + seed % 28, 1 + seed % 28,
                        1 + seed % 3, 1 + seed % 3);
    for (TensorKind t : kAllTensors)
        EXPECT_EQ(Layer::tensorTile(t, l.dims), l.tensorSize(t));
}

INSTANTIATE_TEST_SUITE_P(Shapes, TileProperty, ::testing::Range(1, 12));

} // namespace
} // namespace cimloop::workload
