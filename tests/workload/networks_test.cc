#include "cimloop/workload/networks.hh"

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"

namespace cimloop::workload {
namespace {

TEST(ResNet18, LayerInventory)
{
    Network net = resnet18();
    EXPECT_EQ(net.name, "resnet18");
    ASSERT_EQ(net.layers.size(), 21u); // 20 convs + fc
    EXPECT_EQ(net.layers.front().name, "conv1");
    EXPECT_EQ(net.layers.back().name, "fc");
    // ~1.8 GMACs for ResNet18 at 224x224; our dims use nominal output
    // sizes so we land in the right ballpark.
    double gmacs = static_cast<double>(net.totalMacs()) / 1e9;
    EXPECT_GT(gmacs, 1.0);
    EXPECT_LT(gmacs, 3.0);
}

TEST(ResNet18, IndicesAndNetworkNamesStamped)
{
    Network net = resnet18();
    for (std::size_t i = 0; i < net.layers.size(); ++i) {
        EXPECT_EQ(net.layers[i].index, static_cast<int>(i));
        EXPECT_EQ(net.layers[i].network, "resnet18");
    }
}

TEST(ViT, BlocksRepeatTwelveTimes)
{
    Network net = vitBase();
    std::int64_t qkv_count = 0;
    for (const Layer& l : net.layers) {
        if (l.name == "blk_qkv") {
            qkv_count = l.count;
            EXPECT_EQ(l.size(Dim::C), 768);
            EXPECT_EQ(l.size(Dim::K), 3 * 768);
        }
    }
    EXPECT_EQ(qkv_count, 12);
    // ViT-Base is ~17 GMACs.
    double gmacs = static_cast<double>(net.totalMacs()) / 1e9;
    EXPECT_GT(gmacs, 10.0);
    EXPECT_LT(gmacs, 25.0);
}

TEST(MobileNet, SmallTensors)
{
    Network net = mobileNetV3();
    // Small-tensor workload: every layer's weight tensor must be well under
    // ResNet18's largest (2.4M weights).
    for (const Layer& l : net.layers) {
        EXPECT_LT(l.tensorSize(TensorKind::Weight), 1200000)
            << l.name;
    }
    // Depthwise layers have C == 1.
    bool saw_depthwise = false;
    for (const Layer& l : net.layers) {
        if (l.name.substr(0, 2) == "dw") {
            saw_depthwise = true;
            EXPECT_EQ(l.size(Dim::C), 1) << l.name;
        }
    }
    EXPECT_TRUE(saw_depthwise);
}

TEST(Gpt2, LargeTensors)
{
    Network net = gpt2Small(1024);
    // GPT-2 small forward at seq 1024 is ~100+ GMACs with the LM head.
    double gmacs = static_cast<double>(net.totalMacs()) / 1e9;
    EXPECT_GT(gmacs, 50.0);
    // LM head dominates weight footprint.
    const Layer& head = net.layers.back();
    EXPECT_EQ(head.name, "lm_head");
    EXPECT_EQ(head.tensorSize(TensorKind::Weight), 768LL * 50257);
}

TEST(MaxUtilMvm, MatchesArray)
{
    Network net = maxUtilMvm(256, 64, 10);
    ASSERT_EQ(net.layers.size(), 1u);
    const Layer& l = net.layers[0];
    EXPECT_EQ(l.size(Dim::C), 256); // rows = reduction size
    EXPECT_EQ(l.size(Dim::K), 64);  // cols = output channels
    EXPECT_EQ(l.size(Dim::P), 10);  // vectors
}

TEST(Lookup, ByName)
{
    EXPECT_EQ(networkByName("resnet18").name, "resnet18");
    EXPECT_EQ(networkByName("ViT").name, "vit");
    EXPECT_EQ(networkByName("gpt2").name, "gpt2");
    EXPECT_EQ(networkByName("alexnet").name, "alexnet");
    EXPECT_EQ(networkByName("vgg16").name, "vgg16");
    EXPECT_EQ(networkByName("bert").name, "bert");
    EXPECT_THROW(networkByName("lenet5"), FatalError);
}

class AllNetworks : public ::testing::TestWithParam<const char*>
{};

TEST_P(AllNetworks, WellFormed)
{
    Network net = networkByName(GetParam());
    EXPECT_FALSE(net.layers.empty());
    for (const Layer& l : net.layers) {
        EXPECT_GE(l.count, 1) << l.name;
        EXPECT_GT(l.macs(), 0) << l.name;
        for (TensorKind t : kAllTensors)
            EXPECT_GT(l.tensorSize(t), 0) << l.name;
    }
}

INSTANTIATE_TEST_SUITE_P(Bundled, AllNetworks,
                         ::testing::Values("resnet18", "vit", "mobilenetv3",
                                           "gpt2", "mvm", "alexnet",
                                           "vgg16", "bert"));

} // namespace
} // namespace cimloop::workload
