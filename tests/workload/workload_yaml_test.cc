#include "cimloop/workload/layer.hh"

#include <fstream>

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"
#include "cimloop/yaml/parser.hh"

namespace cimloop::workload {
namespace {

TEST(LayerYaml, FullForm)
{
    yaml::Node n = yaml::parse(
        "name: conv3_1a\n"
        "dims: {C: 64, K: 128, P: 28, Q: 28, R: 3, S: 3}\n"
        "input_bits: 6\n"
        "weight_bits: 4\n"
        "count: 2\n");
    Layer l = layerFromYaml(n);
    EXPECT_EQ(l.name, "conv3_1a");
    EXPECT_EQ(l.size(Dim::C), 64);
    EXPECT_EQ(l.size(Dim::K), 128);
    EXPECT_EQ(l.size(Dim::N), 1); // unlisted defaults to 1
    EXPECT_EQ(l.inputBits, 6);
    EXPECT_EQ(l.weightBits, 4);
    EXPECT_EQ(l.count, 2);
    EXPECT_EQ(l.macs(), 64LL * 128 * 28 * 28 * 3 * 3);
}

TEST(LayerYaml, Errors)
{
    EXPECT_THROW(layerFromYaml(yaml::parse("dims: {C: 4}\n")),
                 FatalError); // no name
    EXPECT_THROW(
        layerFromYaml(yaml::parse("name: x\ndims: {Z: 4}\n")),
        FatalError); // unknown dim
    EXPECT_THROW(
        layerFromYaml(yaml::parse("name: x\ndims: {C: 0}\n")),
        FatalError); // non-positive extent
    EXPECT_THROW(
        layerFromYaml(yaml::parse("name: x\nstride: 2\n")),
        FatalError); // unknown key
    EXPECT_THROW(
        layerFromYaml(yaml::parse("name: x\ncount: 0\n")),
        FatalError);
}

TEST(NetworkYaml, Document)
{
    yaml::Node doc = yaml::parse(
        "name: tiny\n"
        "layers:\n"
        "  - {name: l0, dims: {C: 16, K: 16, P: 8, Q: 8}}\n"
        "  - name: fc\n"
        "    dims: {C: 64, K: 10, P: 1}\n"
        "    count: 3\n");
    Network net = networkFromYaml(doc);
    EXPECT_EQ(net.name, "tiny");
    ASSERT_EQ(net.layers.size(), 2u);
    EXPECT_EQ(net.layers[0].network, "tiny");
    EXPECT_EQ(net.layers[0].index, 0);
    EXPECT_EQ(net.layers[1].index, 1);
    EXPECT_EQ(net.layers[1].networkLayers, 2);
    EXPECT_EQ(net.layers[1].count, 3);
    EXPECT_EQ(net.totalMacs(),
              16LL * 16 * 8 * 8 + 3LL * 64 * 10);
}

TEST(NetworkYaml, Errors)
{
    EXPECT_THROW(networkFromYaml(yaml::parse("name: empty\n")),
                 FatalError);
    EXPECT_THROW(networkFromYaml(yaml::parse(
                     "name: empty\nlayers: []\n")),
                 FatalError);
    EXPECT_THROW(networkFromYaml(yaml::parse(
                     "name: bad\nlayers: 3\n")),
                 FatalError);
}

TEST(NetworkYaml, FileRoundTrip)
{
    const char* path = "/tmp/cimloop_test_net.yaml";
    {
        std::ofstream out(path);
        out << "name: filed\nlayers:\n"
               "  - {name: only, dims: {C: 8, K: 8, P: 4}}\n";
    }
    Network net = networkFromFile(path);
    EXPECT_EQ(net.name, "filed");
    EXPECT_EQ(net.layers[0].macs(), 8LL * 8 * 4);
    EXPECT_THROW(networkFromFile("/nonexistent/net.yaml"), FatalError);
}

} // namespace
} // namespace cimloop::workload
