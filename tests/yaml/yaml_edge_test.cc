#include "cimloop/yaml/parser.hh"

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"

namespace cimloop::yaml {
namespace {

TEST(Edge, CrlfLineEndings)
{
    Node n = parse("a: 1\r\nb: two\r\n");
    EXPECT_EQ(n["a"].asInt(), 1);
    EXPECT_EQ(n["b"].asString(), "two");
}

TEST(Edge, DocumentMarkerIgnored)
{
    Node n = parse("---\na: 1\n");
    EXPECT_EQ(n["a"].asInt(), 1);
}

TEST(Edge, DeepNesting)
{
    Node n = parse(
        "l1:\n"
        "  l2:\n"
        "    l3:\n"
        "      l4:\n"
        "        leaf: 42\n");
    EXPECT_EQ(n["l1"]["l2"]["l3"]["l4"]["leaf"].asInt(), 42);
}

TEST(Edge, SequenceOfSequences)
{
    Node n = parse(
        "- [1, 2]\n"
        "- [3, 4]\n");
    EXPECT_EQ(n[0][1].asInt(), 2);
    EXPECT_EQ(n[1][0].asInt(), 3);
}

TEST(Edge, NestedBlockSequenceUnderKey)
{
    Node n = parse(
        "dims:\n"
        "  - C\n"
        "  - K\n"
        "other: 1\n");
    ASSERT_TRUE(n["dims"].isSequence());
    EXPECT_EQ(n["dims"][0].asString(), "C");
    EXPECT_EQ(n["other"].asInt(), 1);
}

TEST(Edge, DashItemWithNestedMapping)
{
    Node n = parse(
        "- name: a\n"
        "  spatial: {meshX: 2}\n"
        "  tags:\n"
        "    - x\n"
        "- name: b\n");
    EXPECT_EQ(n[0]["spatial"]["meshX"].asInt(), 2);
    EXPECT_EQ(n[0]["tags"][0].asString(), "x");
    EXPECT_EQ(n[1]["name"].asString(), "b");
}

TEST(Edge, NumbersAtBounds)
{
    EXPECT_EQ(parseScalar("0").asInt(), 0);
    EXPECT_EQ(parseScalar("-0").asInt(), 0);
    EXPECT_EQ(parseScalar("9007199254740992").asInt(),
              9007199254740992LL);
    EXPECT_DOUBLE_EQ(parseScalar("1e30").asDouble(), 1e30);
    EXPECT_DOUBLE_EQ(parseScalar("-2.5e-3").asDouble(), -2.5e-3);
    EXPECT_DOUBLE_EQ(parseScalar(".5").asDouble(), 0.5);
}

TEST(Edge, StringsThatLookNumericWhenQuoted)
{
    EXPECT_EQ(parseScalar("\"42\"").asString(), "42");
    Node n = parseScalar("\"42\"");
    EXPECT_THROW(n.asInt(), FatalError); // quoted stays a string
}

TEST(Edge, PlainStringsWithSpecialWords)
{
    EXPECT_EQ(parseScalar("nullify").asString(), "nullify");
    EXPECT_EQ(parseScalar("truex").asString(), "truex");
    EXPECT_EQ(parseScalar("0x").asString(), "0x");
}

TEST(Edge, EscapesInDoubleQuotes)
{
    EXPECT_EQ(parseScalar("\"a\\nb\"").asString(), "a\nb");
    EXPECT_EQ(parseScalar("\"a\\tb\"").asString(), "a\tb");
    EXPECT_EQ(parseScalar("\"a\\\"b\"").asString(), "a\"b");
    // Single quotes: no escape processing.
    EXPECT_EQ(parseScalar("'a\\nb'").asString(), "a\\nb");
}

TEST(Edge, HashInsideFlowString)
{
    Node n = parse("a: {label: \"x # y\", v: 1} # trailing\n");
    EXPECT_EQ(n["a"]["label"].asString(), "x # y");
    EXPECT_EQ(n["a"]["v"].asInt(), 1);
}

TEST(Edge, ColonInsideFlowValue)
{
    Node n = parseScalar("{time: \"12:30\"}");
    EXPECT_EQ(n["time"].asString(), "12:30");
}

TEST(Edge, WhitespaceOnlyAndCommentDocuments)
{
    EXPECT_TRUE(parse("   \n\t \n").isNull());
}

TEST(Edge, TaggedFlowValue)
{
    Node n = parse("cell: !Device {g_on: 100}\n");
    EXPECT_EQ(n["cell"].tag(), "Device");
    EXPECT_EQ(n["cell"]["g_on"].asInt(), 100);
}

TEST(Edge, LoneTagWithEmptyBody)
{
    Node doc = parse("!Component\n!Container\nname: c\n");
    ASSERT_TRUE(doc.isSequence());
    ASSERT_EQ(doc.size(), 2u);
    EXPECT_EQ(doc[0].tag(), "Component");
    EXPECT_EQ(doc[0].size(), 0u); // empty mapping body
    EXPECT_EQ(doc[1]["name"].asString(), "c");
}

TEST(Edge, GetterFallbacks)
{
    Node n = parse("a: 1\nf: 2.5\ns: hi\nb: true\n");
    EXPECT_EQ(n.getInt("a", -1), 1);
    EXPECT_EQ(n.getInt("zz", -1), -1);
    EXPECT_DOUBLE_EQ(n.getDouble("f", 0.0), 2.5);
    EXPECT_DOUBLE_EQ(n.getDouble("zz", 7.5), 7.5);
    EXPECT_EQ(n.getString("s", ""), "hi");
    EXPECT_EQ(n.getString("zz", "dflt"), "dflt");
    EXPECT_EQ(n.getBool("b", false), true);
    EXPECT_EQ(n.getBool("zz", true), true);
}

TEST(Edge, MixedIndentSiblingsRejected)
{
    // A dedent to an indentation level that never opened a block leaves
    // trailing content, which must be an error, not silent truncation.
    EXPECT_THROW(parse("a:\n    x: 1\n  y: 2\n"), FatalError);
}

class ScalarRoundTrip : public ::testing::TestWithParam<const char*>
{};

TEST_P(ScalarRoundTrip, ParseRenderParse)
{
    Node first = parseScalar(GetParam());
    Node second = parseScalar(first.toString());
    EXPECT_EQ(first.toString(), second.toString());
}

INSTANTIATE_TEST_SUITE_P(
    Values, ScalarRoundTrip,
    ::testing::Values("42", "-3.5", "true", "null", "\"text\"",
                      "[1, 2, [3]]", "{a: 1, b: [x, y]}",
                      "{nested: {deep: {v: 9}}}"));

} // namespace
} // namespace cimloop::yaml
