/**
 * Robustness: the parser must never crash or corrupt memory on mangled
 * input — every malformed document must either parse to something or
 * raise FatalError. Deterministic mutation fuzzing over a corpus of
 * valid documents.
 */
#include "cimloop/yaml/parser.hh"

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"
#include "cimloop/common/util.hh"

namespace cimloop::yaml {
namespace {

const char* kCorpus[] = {
    "a: 1\nb:\n  c: [1, 2, {d: x}]\n",
    "!Component\nname: buffer\ntemporal_reuse: [Inputs, Outputs]\n"
    "!Container\nname: macro\nspatial: {meshX: 2, meshY: 4}\n",
    "- 1\n- [a, b]\n- name: x\n  v: 2.5\n",
    "k: \"quoted # text\" # comment\nl: 'single'\nm: -3.7e2\n",
    "layers:\n  - {name: l0, dims: {C: 16, K: 16}}\n  - name: l1\n"
    "    dims: {C: 8}\n",
};

/** Deterministic byte-level mutation. */
std::string
mutate(const std::string& base, Rng& rng)
{
    std::string s = base;
    int edits = 1 + static_cast<int>(rng.below(4));
    const char alphabet[] = "{}[]:,-!#\"' \nabz019\t";
    for (int e = 0; e < edits && !s.empty(); ++e) {
        std::size_t pos = rng.below(s.size());
        switch (rng.below(3)) {
          case 0: // flip
            s[pos] = alphabet[rng.below(sizeof(alphabet) - 1)];
            break;
          case 1: // delete
            s.erase(pos, 1);
            break;
          default: // insert
            s.insert(pos, 1,
                     alphabet[rng.below(sizeof(alphabet) - 1)]);
            break;
        }
    }
    return s;
}

TEST(Robustness, MutatedDocumentsNeverCrash)
{
    Rng rng(0xC0FFEE);
    int parsed = 0, rejected = 0;
    for (const char* base : kCorpus) {
        for (int trial = 0; trial < 400; ++trial) {
            std::string doc = mutate(base, rng);
            try {
                Node n = parse(doc);
                // Whatever parsed must be traversable and printable.
                (void)n.toString();
                ++parsed;
            } catch (const FatalError&) {
                ++rejected;
            }
            // Any other exception type escapes and fails the test.
        }
    }
    // Both outcomes must actually occur (the fuzzer is doing work).
    EXPECT_GT(parsed, 100);
    EXPECT_GT(rejected, 100);
}

TEST(Robustness, TruncationsNeverCrash)
{
    for (const char* base : kCorpus) {
        std::string doc(base);
        for (std::size_t len = 0; len <= doc.size(); ++len) {
            try {
                (void)parse(doc.substr(0, len)).toString();
            } catch (const FatalError&) {
            }
        }
    }
}

TEST(Robustness, DeepFlowNestingBounded)
{
    // 300 levels of nested flow sequences parse (recursion is linear in
    // input size) and render back.
    std::string doc;
    for (int i = 0; i < 300; ++i)
        doc += '[';
    doc += '1';
    for (int i = 0; i < 300; ++i)
        doc += ']';
    Node n = parseScalar(doc);
    for (int i = 0; i < 300; ++i)
        n = n[std::size_t{0}];
    EXPECT_EQ(n.asInt(), 1);
}

} // namespace
} // namespace cimloop::yaml
