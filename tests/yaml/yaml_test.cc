#include "cimloop/yaml/parser.hh"

#include <gtest/gtest.h>

#include "cimloop/common/error.hh"

namespace cimloop::yaml {
namespace {

TEST(Scalars, Types)
{
    EXPECT_TRUE(parseScalar("null").isNull());
    EXPECT_TRUE(parseScalar("~").isNull());
    EXPECT_EQ(parseScalar("true").asBool(), true);
    EXPECT_EQ(parseScalar("False").asBool(), false);
    EXPECT_EQ(parseScalar("42").asInt(), 42);
    EXPECT_EQ(parseScalar("-7").asInt(), -7);
    EXPECT_EQ(parseScalar("0x10").asInt(), 16);
    EXPECT_DOUBLE_EQ(parseScalar("2.5").asDouble(), 2.5);
    EXPECT_DOUBLE_EQ(parseScalar("1e-3").asDouble(), 1e-3);
    EXPECT_EQ(parseScalar("hello").asString(), "hello");
    EXPECT_EQ(parseScalar("\"quoted: str\"").asString(), "quoted: str");
    EXPECT_EQ(parseScalar("'single'").asString(), "single");
}

TEST(Scalars, IntAlsoReadableAsDouble)
{
    EXPECT_DOUBLE_EQ(parseScalar("3").asDouble(), 3.0);
}

TEST(Flow, Sequence)
{
    Node n = parseScalar("[1, 2.5, x, [a, b]]");
    ASSERT_TRUE(n.isSequence());
    ASSERT_EQ(n.size(), 4u);
    EXPECT_EQ(n[0].asInt(), 1);
    EXPECT_DOUBLE_EQ(n[1].asDouble(), 2.5);
    EXPECT_EQ(n[2].asString(), "x");
    EXPECT_EQ(n[3][1].asString(), "b");
}

TEST(Flow, Mapping)
{
    Node n = parseScalar("{meshX: 2, meshY: 4, label: 'col, 0'}");
    ASSERT_TRUE(n.isMapping());
    EXPECT_EQ(n["meshX"].asInt(), 2);
    EXPECT_EQ(n["meshY"].asInt(), 4);
    EXPECT_EQ(n["label"].asString(), "col, 0");
}

TEST(Flow, EmptyContainers)
{
    EXPECT_EQ(parseScalar("[]").size(), 0u);
    EXPECT_EQ(parseScalar("{}").size(), 0u);
}

TEST(Block, SimpleMapping)
{
    Node n = parse(
        "name: buffer\n"
        "depth: 1024\n"
        "width: 64\n");
    ASSERT_TRUE(n.isMapping());
    EXPECT_EQ(n["name"].asString(), "buffer");
    EXPECT_EQ(n["depth"].asInt(), 1024);
    EXPECT_EQ(n.getInt("missing", -1), -1);
}

TEST(Block, NestedMapping)
{
    Node n = parse(
        "outer:\n"
        "  inner:\n"
        "    a: 1\n"
        "  b: 2\n"
        "c: 3\n");
    EXPECT_EQ(n["outer"]["inner"]["a"].asInt(), 1);
    EXPECT_EQ(n["outer"]["b"].asInt(), 2);
    EXPECT_EQ(n["c"].asInt(), 3);
}

TEST(Block, SequenceOfScalars)
{
    Node n = parse(
        "- alpha\n"
        "- 2\n"
        "- 3.5\n");
    ASSERT_TRUE(n.isSequence());
    EXPECT_EQ(n[0].asString(), "alpha");
    EXPECT_EQ(n[1].asInt(), 2);
}

TEST(Block, SequenceOfMappings)
{
    Node n = parse(
        "- name: a\n"
        "  size: 1\n"
        "- name: b\n"
        "  size: 2\n");
    ASSERT_TRUE(n.isSequence());
    ASSERT_EQ(n.size(), 2u);
    EXPECT_EQ(n[0]["name"].asString(), "a");
    EXPECT_EQ(n[1]["size"].asInt(), 2);
}

TEST(Block, CommentsIgnored)
{
    Node n = parse(
        "# full-line comment\n"
        "a: 1 # trailing comment\n"
        "b: \"# not a comment\"\n");
    EXPECT_EQ(n["a"].asInt(), 1);
    EXPECT_EQ(n["b"].asString(), "# not a comment");
}

// The paper's Fig. 5b style: lone !Component / !Container tag lines, each
// followed by key: value lines at the same indentation.
TEST(Block, PaperStyleTaggedBlocks)
{
    Node doc = parse(
        "!Component\n"
        "name: buffer\n"
        "temporal_reuse: [Inputs, Outputs]\n"
        "!Container\n"
        "name: macro\n"
        "!Component\n"
        "name: DAC_bank\n"
        "no_coalesce: [Inputs]\n"
        "!Container\n"
        "name: column\n"
        "spatial: {meshX: 2}\n"
        "spatial_reuse: [Inputs]\n"
        "!Component\n"
        "name: memory_cell\n"
        "spatial: {meshY: 2}\n"
        "temporal_reuse: [Weights]\n"
        "spatial_reuse: [Outputs]\n");
    ASSERT_TRUE(doc.isSequence());
    ASSERT_EQ(doc.size(), 5u);
    EXPECT_EQ(doc[0].tag(), "Component");
    EXPECT_EQ(doc[0]["name"].asString(), "buffer");
    EXPECT_EQ(doc[0]["temporal_reuse"][1].asString(), "Outputs");
    EXPECT_EQ(doc[1].tag(), "Container");
    EXPECT_EQ(doc[3]["spatial"]["meshX"].asInt(), 2);
    EXPECT_EQ(doc[4]["spatial"]["meshY"].asInt(), 2);
    EXPECT_EQ(doc[4]["spatial_reuse"][0].asString(), "Outputs");
}

TEST(Block, TaggedValueInMapping)
{
    Node n = parse(
        "arch: !Macro {rows: 4, cols: 8}\n"
        "adc: !ADC\n"
        "  bits: 8\n");
    EXPECT_EQ(n["arch"].tag(), "Macro");
    EXPECT_EQ(n["arch"]["cols"].asInt(), 8);
    EXPECT_EQ(n["adc"].tag(), "ADC");
    EXPECT_EQ(n["adc"]["bits"].asInt(), 8);
}

TEST(Block, EmptyDocumentIsNull)
{
    EXPECT_TRUE(parse("").isNull());
    EXPECT_TRUE(parse("# only comments\n\n").isNull());
}

TEST(Errors, MissingKeyIsFatal)
{
    Node n = parse("a: 1\n");
    EXPECT_THROW(n["b"], FatalError);
    EXPECT_THROW(n["a"]["c"], FatalError); // scalar lookup
}

TEST(Errors, KindMismatchIsFatal)
{
    Node n = parse("a: hello\n");
    EXPECT_THROW(n["a"].asInt(), FatalError);
    EXPECT_THROW(n["a"].asBool(), FatalError);
    EXPECT_THROW(n[std::size_t{0}], FatalError);
}

TEST(Errors, MalformedFlowIsFatal)
{
    EXPECT_THROW(parseScalar("[1, 2"), FatalError);
    EXPECT_THROW(parseScalar("{a: 1"), FatalError);
    EXPECT_THROW(parseScalar("\"unterminated"), FatalError);
}

TEST(Errors, TabsRejected)
{
    EXPECT_THROW(parse("a:\n\tb: 1\n"), FatalError);
}

TEST(Node, ToStringRoundTrip)
{
    Node n = parseScalar("{a: [1, 2], b: true}");
    EXPECT_EQ(n.toString(), "{a: [1, 2], b: true}");
}

TEST(Node, BuilderInterface)
{
    Node m = Node::makeMapping();
    m.set("x", Node::makeInt(5));
    m.set("y", Node::makeSequence());
    m.set("x", Node::makeInt(6)); // overwrite
    EXPECT_EQ(m["x"].asInt(), 6);
    EXPECT_EQ(m.size(), 2u);
}

} // namespace
} // namespace cimloop::yaml
