/**
 * @file
 * The `cimloop` command-line entry point; all logic lives in
 * cimloop::cli (one-shot modes) and cimloop::serve (the daemon), so it
 * can be unit-tested. The `serve` subcommand dispatches here — not in
 * cli::run() — because serve links against cli, not the other way
 * around.
 */
#include <iostream>
#include <string>
#include <vector>

#include "cimloop/cli/cli.hh"
#include "cimloop/serve/server.hh"

int
main(int argc, char** argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (!args.empty() && args[0] == "serve") {
        args.erase(args.begin());
        return cimloop::serve::runServe(args, std::cout, std::cerr);
    }
    return cimloop::cli::run(args, std::cout, std::cerr);
}
