/**
 * @file
 * The `cimloop` command-line entry point; all logic lives in
 * cimloop::cli so it can be unit-tested.
 */
#include <iostream>
#include <vector>

#include "cimloop/cli/cli.hh"

int
main(int argc, char** argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    return cimloop::cli::run(args, std::cout, std::cerr);
}
