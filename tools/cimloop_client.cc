/**
 * @file
 * Minimal NDJSON client for `cimloop serve`, used by the serve e2e
 * harness (tests/tools/serve_e2e.sh) and handy for manual poking:
 *
 *   cimloop_client --socket /tmp/cimloop.sock --input requests.ndjson
 *   echo '{"id":1,"kind":"ping"}' | cimloop_client --socket S
 *
 * Sends one request line at a time and waits for its response line
 * (strict request/response lockstep, so output order is deterministic).
 * By default prints each raw response line to stdout. With
 * --extract-stdout it instead parses each response and writes the
 * decoded "stdout" field to stdout and "stderr" to stderr — exactly the
 * bytes the equivalent one-shot CLI run would have written, which is
 * what the e2e test byte-compares.
 *
 * Connects with retry (the daemon may still be binding), and exits 0
 * iff every response had "ok":true.
 */
#include <cerrno>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "cimloop/serve/json.hh"

namespace {

using cimloop::serve::JsonValue;
using cimloop::serve::parseJson;

int
usage(std::ostream& os, int rc)
{
    os << "usage: cimloop_client --socket PATH [--input FILE]\n"
          "                      [--extract-stdout] [--connect-timeout-s N]\n"
          "\n"
          "Reads NDJSON requests from FILE (default stdin), sends them to\n"
          "a cimloop serve daemon one at a time, and prints each response\n"
          "line. --extract-stdout instead re-emits each response's stdout\n"
          "and stderr fields verbatim. Exits 0 iff every response is ok.\n";
    return rc;
}

/** Connects to the Unix socket, retrying while the daemon starts up. */
int
connectWithRetry(const std::string& path, double timeout_s,
                 std::string& error)
{
    sockaddr_un addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        error = "socket path too long: " + path;
        return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int attempts = static_cast<int>(timeout_s * 10.0) + 1;
    for (int i = 0; i < attempts; ++i) {
        int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0) {
            error = std::string("socket(): ") + std::strerror(errno);
            return -1;
        }
        if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
            return fd;
        }
        error = std::string("connect(") + path +
                "): " + std::strerror(errno);
        ::close(fd);
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    return -1;
}

bool
writeAll(int fd, const std::string& data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

/** Reads one '\n'-terminated line from the socket via @p carry. */
bool
readLine(int fd, std::string& carry, std::string& line)
{
    for (;;) {
        std::size_t nl = carry.find('\n');
        if (nl != std::string::npos) {
            line = carry.substr(0, nl);
            carry.erase(0, nl + 1);
            return true;
        }
        char buf[64 * 1024];
        ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return false; // server closed before a full line arrived
        carry.append(buf, static_cast<std::size_t>(n));
    }
}

} // namespace

int
main(int argc, char** argv)
{
    std::string socket_path;
    std::string input_path;
    bool extract_stdout = false;
    double connect_timeout_s = 10.0;

    std::vector<std::string> args(argv + 1, argv + argc);
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& a = args[i];
        const auto value = [&](std::string& v) -> bool {
            if (i + 1 >= args.size())
                return false;
            v = args[++i];
            return true;
        };
        if (a == "--socket") {
            if (!value(socket_path))
                return usage(std::cerr, 2);
        } else if (a == "--input") {
            if (!value(input_path))
                return usage(std::cerr, 2);
        } else if (a == "--extract-stdout") {
            extract_stdout = true;
        } else if (a == "--connect-timeout-s") {
            std::string s;
            if (!value(s))
                return usage(std::cerr, 2);
            connect_timeout_s = std::strtod(s.c_str(), nullptr);
        } else if (a == "--help" || a == "-h") {
            return usage(std::cout, 0);
        } else {
            std::cerr << "cimloop_client: unknown flag: " << a << "\n";
            return usage(std::cerr, 2);
        }
    }
    if (socket_path.empty()) {
        std::cerr << "cimloop_client: --socket PATH is required\n";
        return usage(std::cerr, 2);
    }

    std::ifstream file;
    std::istream* in = &std::cin;
    if (!input_path.empty()) {
        file.open(input_path);
        if (!file) {
            std::cerr << "cimloop_client: cannot open " << input_path
                      << "\n";
            return 1;
        }
        in = &file;
    }

    std::string error;
    int fd = connectWithRetry(socket_path, connect_timeout_s, error);
    if (fd < 0) {
        std::cerr << "cimloop_client: " << error << "\n";
        return 1;
    }

    bool all_ok = true;
    std::string carry;
    std::string request;
    while (std::getline(*in, request)) {
        if (request.find_first_not_of(" \t\r") == std::string::npos)
            continue;
        if (!writeAll(fd, request + "\n")) {
            std::cerr << "cimloop_client: send failed: "
                      << std::strerror(errno) << "\n";
            ::close(fd);
            return 1;
        }
        std::string response;
        if (!readLine(fd, carry, response)) {
            std::cerr << "cimloop_client: server closed the connection\n";
            ::close(fd);
            return 1;
        }

        auto doc = parseJson(response);
        const JsonValue* ok =
            doc && doc->isObject() ? doc->get("ok") : nullptr;
        if (!ok || !ok->isBool() || !ok->boolean)
            all_ok = false;

        if (extract_stdout) {
            if (doc && doc->isObject()) {
                if (const JsonValue* o = doc->get("stdout");
                    o && o->isString())
                    std::cout << o->text;
                if (const JsonValue* e = doc->get("stderr");
                    e && e->isString())
                    std::cerr << e->text;
                if (const JsonValue* err_obj = doc->get("error");
                    err_obj && err_obj->isObject()) {
                    if (const JsonValue* m = err_obj->get("message");
                        m && m->isString())
                        std::cerr << "error: " << m->text << "\n";
                }
            }
        } else {
            std::cout << response << "\n";
        }
    }
    std::cout.flush();
    ::close(fd);
    return all_ok ? 0 : 1;
}
